"""Address corpora: the primary data structure of the study.

An :class:`AddressCorpus` accumulates sightings of addresses — from the
passive NTP servers, or imported from an active campaign's history — and
answers the aggregate questions the paper's analyses ask: how many
addresses, in which ASes and /48s, seen when, for how long, with which
IIDs.

Storage is deliberately compact (one ``[first, last, count]`` record per
address): the paper itself compacts raw request logs the same way, and
the ablation bench (DESIGN.md §6) quantifies why.

For analysis workloads a corpus can carry a columnar
:class:`~repro.core.index.CorpusIndex` (see :meth:`AddressCorpus.build_index`);
while one is attached, the aggregate accessors below answer from its
memoized columns instead of re-scanning the records.  Appends
(:meth:`AddressCorpus.record`, :meth:`AddressCorpus.record_interval`,
:meth:`AddressCorpus.merge`) keep the attached index current via
:meth:`CorpusIndex.observe <repro.core.index.CorpusIndex.observe>`
delta maintenance rather than invalidating it; only genuinely
destructive mutations (clearing the record store, as a segment seal
does) drop the index and force a rebuild.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..addr.eui64 import extract_mac
from ..addr.ipv6 import iid_of, slash48_of, slash64_of

__all__ = ["AddressCorpus"]


class AddressCorpus:
    """A deduplicated set of observed addresses with sighting intervals."""

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("corpus needs a name")
        # Newlines (or other line separators) in the name would corrupt
        # the one-line text header the storage layer writes.
        if "\n" in name or "\r" in name:
            raise ValueError(
                f"corpus name must not contain line breaks: {name!r}"
            )
        self.name = name
        # address -> [first_seen, last_seen, observation_count]
        self._records: Dict[int, List[float]] = {}
        # Columnar index over the records; None until built.  Appends
        # maintain it in place (CorpusIndex.observe); destructive
        # mutations must reset it to None.
        self._index = None

    # -- columnar index ------------------------------------------------------

    @property
    def index(self):
        """The attached :class:`CorpusIndex`, or ``None``."""
        return self._index

    def build_index(self, origins=None, metrics=None):
        """Build, attach and return a columnar index over the records.

        ``origins`` is an optional :class:`~repro.core.index.CachedOrigins`
        resolver the index's origin aggregations default to.
        ``metrics`` is an optional :class:`~repro.obs.MetricsRegistry`
        on which the full scan is counted
        (``repro_index_full_rebuilds_total``).
        """
        from .index import CorpusIndex

        self._index = CorpusIndex.build(self, origins=origins, metrics=metrics)
        return self._index

    def attach_index(self, index) -> None:
        """Attach a prebuilt index (must match this corpus's size).

        The attached index stays live: subsequent appends maintain it
        via :meth:`CorpusIndex.observe <repro.core.index.CorpusIndex.observe>`.
        """
        if index is not None and len(index) != len(self._records):
            raise ValueError(
                f"index has {len(index)} rows for {len(self._records)} records"
            )
        self._index = index

    # -- recording -----------------------------------------------------------

    def record(self, address: int, when: float) -> None:
        """Record one sighting of ``address`` at ``when``."""
        if not math.isfinite(when):
            raise ValueError(f"non-finite sighting timestamp: {when!r}")
        record = self._records.get(address)
        if record is None:
            record = [when, when, 1]
            self._records[address] = record
        else:
            if when < record[0]:
                record[0] = when
            if when > record[1]:
                record[1] = when
            record[2] += 1
        if self._index is not None:
            self._index.observe(address, record[0], record[1], record[2])

    def record_interval(
        self, address: int, first: float, last: float, count: int = 2
    ) -> None:
        """Import a pre-compacted sighting interval (from scan histories)."""
        # NaN must be rejected explicitly: ``last < first`` is False for
        # NaN operands, so it would slip past the ordering guard below.
        if not (math.isfinite(first) and math.isfinite(last)):
            raise ValueError(
                f"non-finite interval timestamps: {first!r}, {last!r}"
            )
        if last < first:
            raise ValueError("interval ends before it starts")
        if count < 1:
            raise ValueError("count must be >= 1")
        record = self._records.get(address)
        if record is None:
            record = [first, last, count]
            self._records[address] = record
        else:
            record[0] = min(record[0], first)
            record[1] = max(record[1], last)
            record[2] += count
        if self._index is not None:
            self._index.observe(address, record[0], record[1], record[2])

    @classmethod
    def from_history(
        cls, name: str, history: Dict[int, Tuple[float, float]]
    ) -> "AddressCorpus":
        """Build a corpus from a ``{address: (first, last)}`` history."""
        corpus = cls(name)
        for address, (first, last) in history.items():
            count = 1 if last == first else 2
            corpus.record_interval(address, first, last, count)
        return corpus

    def merge(self, other: "AddressCorpus") -> None:
        """Fold another corpus's records into this one.

        Records inside an :class:`AddressCorpus` were validated when
        they were first recorded, so the merge skips the per-record
        :meth:`record_interval` re-validation and manipulates the
        record store directly — the hot path when a sharded campaign
        folds worker snapshots back together.
        """
        if not isinstance(other, AddressCorpus):
            for address, (first, last, count) in other.items():
                self.record_interval(address, first, last, count)
            return
        index = self._index
        records = self._records
        if not records and index is None:
            # Bulk copy: list copies keep the two corpora independent.
            self._records = {
                address: record.copy()
                for address, record in other._records.items()
            }
            return
        for address, record in other._records.items():
            mine = records.get(address)
            if mine is None:
                mine = record.copy()
                records[address] = mine
            else:
                if record[0] < mine[0]:
                    mine[0] = record[0]
                if record[1] > mine[1]:
                    mine[1] = record[1]
                mine[2] += record[2]
            if index is not None:
                index.observe(address, mine[0], mine[1], mine[2])

    # -- basic access ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, address: int) -> bool:
        return address in self._records

    def addresses(self) -> Iterator[int]:
        """All distinct addresses."""
        return iter(self._records)

    def items(self) -> Iterator[Tuple[int, Tuple[float, float, int]]]:
        """All ``(address, (first, last, count))`` pairs."""
        for address, record in self._records.items():
            yield address, (record[0], record[1], record[2])

    def first_seen(self, address: int) -> float:
        """First sighting time of ``address``."""
        return self._records[address][0]

    def last_seen(self, address: int) -> float:
        """Last sighting time of ``address``."""
        return self._records[address][1]

    def lifetime(self, address: int) -> float:
        """Observed lifetime: last minus first sighting (0 if seen once)."""
        record = self._records[address]
        return record[1] - record[0]

    def observation_count(self, address: int) -> int:
        """Number of recorded sightings of ``address``."""
        return int(self._records[address][2])

    # -- aggregates --------------------------------------------------------------

    def lifetimes(self) -> List[float]:
        """Observed lifetimes of all addresses (Fig. 2a input)."""
        if self._index is not None:
            return list(self._index.lifetimes())
        return [record[1] - record[0] for record in self._records.values()]

    def slash48_set(self) -> Set[int]:
        """Distinct /48 prefixes covering the corpus."""
        if self._index is not None:
            return set(self._index.slash48_set())
        return {slash48_of(address) for address in self._records}

    def slash64_set(self) -> Set[int]:
        """Distinct /64 prefixes covering the corpus."""
        if self._index is not None:
            return set(self._index.slash64_set())
        return {slash64_of(address) for address in self._records}

    def asn_set(
        self, origin: Callable[[int], Optional[int]]
    ) -> Set[int]:
        """Distinct origin ASNs (unrouted addresses are skipped)."""
        if self._index is not None:
            return self._index.asn_set(origin)
        asns = set()
        for address in self._records:
            asn = origin(address)
            if asn is not None:
                asns.add(asn)
        return asns

    def asn_counts(
        self, origin: Callable[[int], Optional[int]]
    ) -> Counter:
        """Address count per origin ASN (``None`` for unrouted)."""
        if self._index is not None:
            return self._index.asn_counts(origin)
        counts: Counter = Counter()
        for address in self._records:
            counts[origin(address)] += 1
        return counts

    def addresses_in_window(self, start: float, end: float) -> Iterator[int]:
        """Addresses whose sighting interval intersects ``[start, end)``."""
        for address, record in self._records.items():
            if record[0] < end and record[1] >= start:
                yield address

    def common_addresses(self, other: "AddressCorpus") -> Set[int]:
        """Addresses present in both corpora."""
        if len(other) < len(self):
            small, large = other, self
        else:
            small, large = self, other
        return {
            address for address in small.addresses() if address in large
        }

    # -- IID-level views -----------------------------------------------------------

    def iid_intervals(self) -> Dict[int, Tuple[float, float]]:
        """Per-IID sighting intervals across all addresses (Fig. 2b)."""
        if self._index is not None:
            return dict(self._index.iid_intervals())
        intervals: Dict[int, List[float]] = {}
        for address, record in self._records.items():
            iid = iid_of(address)
            existing = intervals.get(iid)
            if existing is None:
                intervals[iid] = [record[0], record[1]]
            else:
                existing[0] = min(existing[0], record[0])
                existing[1] = max(existing[1], record[1])
        return {
            iid: (interval[0], interval[1])
            for iid, interval in intervals.items()
        }

    def eui64_addresses(self) -> Iterator[int]:
        """Addresses whose IID carries the EUI-64 marker."""
        if self._index is not None:
            from .index import NO_MAC

            index = self._index
            for row, mac in enumerate(index.macs):
                if mac != NO_MAC:
                    yield index.addresses[row]
            return
        for address in self._records:
            if extract_mac(address) is not None:
                yield address

    def eui64_mac_addresses(self) -> Dict[int, List[int]]:
        """Embedded MAC → list of addresses exposing it (§5 input)."""
        if self._index is not None:
            return self._index.eui64_mac_addresses()
        by_mac: Dict[int, List[int]] = defaultdict(list)
        for address in self._records:
            mac = extract_mac(address)
            if mac is not None:
                by_mac[mac].append(address)
        return dict(by_mac)

    def __repr__(self) -> str:
        return f"AddressCorpus({self.name!r}, {len(self):,} addresses)"
