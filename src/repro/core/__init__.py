"""The paper's core contribution: passive collection and its analyses.

The address corpus (:mod:`repro.core.corpus`), the 27-vantage NTP
campaign (:mod:`repro.core.campaign`), full-study orchestration
(:mod:`repro.core.study`), the Table 1 dataset comparison
(:mod:`repro.core.compare`), lifetime analyses (:mod:`repro.core.lifetime`),
backscanning (:mod:`repro.core.backscan`), addressing-pattern views
(:mod:`repro.core.categories`), EUI-64 tracking
(:mod:`repro.core.tracking`) and the ethics-aware /48 release
(:mod:`repro.core.release`).
"""

from .backscan import BackscanCampaign, BackscanReport
from .campaign import CampaignConfig, CaptureModel, NTPCampaign
from .categories import (
    category_composition,
    compare_category_compositions,
    top_as_entropy_distributions,
)
from .compare import (
    DatasetComparison,
    DatasetRow,
    compare_datasets,
    phone_provider_shares,
)
from .corpus import AddressCorpus
from .index import CachedOrigins, CorpusIndex, PartialIndexColumns
from .lifetime import (
    LifetimeSummary,
    address_lifetime_summary,
    eui64_iid_lifetimes,
    iid_lifetimes_by_entropy,
)
from .decay import corpus_decay, responsiveness_decay
from .outages import ASActivityRecorder, OutageEvent, detect_outages
from .parallel import ShardFailure, ShardSpec, run_campaign_parallel
from .segments import (
    PARTIAL_INDEX_SUFFIX,
    Manifest,
    SegmentBufferedCorpus,
    SegmentError,
    SegmentMeta,
    SegmentStore,
    SegmentedCorpusReader,
)
from .release import (
    ReleaseArtifact,
    build_release,
    verify_release_safety,
)
from .storage import (
    CheckpointIntegrityError,
    CorpusFormatError,
    load_checkpoint,
    load_corpus,
    resolve_resume_checkpoint,
    save_checkpoint,
    save_corpus,
)
from .study import ExecutionOptions, StudyConfig, StudyResults, run_study
from .tracking import (
    MACTrack,
    TRANSITION_THRESHOLD,
    TrackingClass,
    TrackingReport,
    analyze_tracking,
    build_mac_tracks,
)

__all__ = [
    "ASActivityRecorder",
    "AddressCorpus",
    "BackscanCampaign",
    "BackscanReport",
    "CachedOrigins",
    "CampaignConfig",
    "CaptureModel",
    "CheckpointIntegrityError",
    "CorpusFormatError",
    "CorpusIndex",
    "DatasetComparison",
    "DatasetRow",
    "ExecutionOptions",
    "LifetimeSummary",
    "MACTrack",
    "Manifest",
    "NTPCampaign",
    "OutageEvent",
    "PARTIAL_INDEX_SUFFIX",
    "PartialIndexColumns",
    "ReleaseArtifact",
    "SegmentBufferedCorpus",
    "SegmentError",
    "SegmentMeta",
    "SegmentStore",
    "SegmentedCorpusReader",
    "ShardFailure",
    "ShardSpec",
    "StudyConfig",
    "StudyResults",
    "TRANSITION_THRESHOLD",
    "TrackingClass",
    "TrackingReport",
    "address_lifetime_summary",
    "analyze_tracking",
    "build_mac_tracks",
    "build_release",
    "category_composition",
    "compare_category_compositions",
    "compare_datasets",
    "corpus_decay",
    "detect_outages",
    "eui64_iid_lifetimes",
    "iid_lifetimes_by_entropy",
    "load_checkpoint",
    "load_corpus",
    "phone_provider_shares",
    "resolve_resume_checkpoint",
    "responsiveness_decay",
    "run_campaign_parallel",
    "run_study",
    "save_checkpoint",
    "save_corpus",
    "top_as_entropy_distributions",
    "verify_release_safety",
]
