"""Single-pass columnar corpus index with cached LPM origin resolution.

The paper's entire analysis section (§4–§5) is aggregate queries over one
7.9B-address corpus.  Re-walking the corpus once per figure — and walking
the 128-bit routing trie once per address per consumer — makes analysis
cost O(figures × addresses × trie-depth).  Addresses cluster under few
prefixes ("Clusters in the Expanse"; this paper's /48- and /64-level
aggregation), so the right shape is the opposite: resolve each structural
property of an address exactly once, resolve origin once per distinct
/64, and let every figure and table read precomputed columns.

The heavy per-IID work (entropy, pattern class, MAC extraction) and the
column folds live in :mod:`repro.core.kernels` — numpy-vectorized when
numpy is available, pure Python otherwise, bit-identical either way.
An index is **incrementally maintainable**: corpus appends call
:meth:`CorpusIndex.observe` to update columns in place instead of
invalidating the index, and a segmented corpus is indexed by folding
seal-time :class:`PartialIndexColumns` (one per segment) with
:meth:`CorpusIndex.from_partials` — no segment rescan.

Three classes implement that:

* :class:`CorpusIndex` — a one-pass columnar materialization of an
  :class:`~repro.core.corpus.AddressCorpus`: parallel columns for
  address, first/last/count, /48 key, /64 key, IID, normalized IID
  entropy, structural pattern class and extracted EUI-64 MAC, plus
  lazily-memoized aggregate views (prefix sets, lifetimes, IID
  intervals, per-MAC groupings, origin-AS counts) shared by every
  consumer.
* :class:`PartialIndexColumns` — one sealed segment's columnar summary,
  built at seal time and persisted next to the segment; any set of
  partials folds associatively into a full :class:`CorpusIndex`.
* :class:`CachedOrigins` — a longest-prefix-match memoizer: origin ASN
  is computed once per distinct /64 rather than once per address per
  consumer.  **Correctness condition**: all addresses of a /64 share an
  origin only when no announcement *longer* than /64 intersects that
  /64.  Any announcement with length > 64 is wholly contained in a
  single /64, so the resolver precomputes that "hot" /64 set and falls
  back to per-address LPM inside it.

Columns use :mod:`array` storage where the element width permits
(timestamps, counts, 64-bit IIDs/MACs, entropy, pattern codes); 128-bit
addresses and prefix keys stay in plain lists.
"""

from __future__ import annotations

from array import array
from collections import Counter, OrderedDict
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import sys

from ..addr.ipv6 import IID_MASK, PREFIX_MASK
from ..addr.patterns import (
    AddressCategory,
    CATEGORY_BY_CODE,
    STRUCTURAL_CODES,
)
from . import kernels as _kernels
from .kernels import NO_MAC

__all__ = [
    "CachedOrigins",
    "CorpusIndex",
    "PartialIndexColumns",
    "NO_MAC",
    "STRUCTURAL_CODES",
]

_SLASH48_MASK = ~((1 << 80) - 1)

_BIG_ENDIAN = sys.byteorder == "big"


def _column_le_bytes(column: array) -> bytes:
    """Serialize an :mod:`array` column as little-endian bytes."""
    if _BIG_ENDIAN:  # pragma: no cover - no big-endian CI platform
        swapped = array(column.typecode, column)
        swapped.byteswap()
        return swapped.tobytes()
    return column.tobytes()


def _column_from_le(typecode: str, data: bytes) -> array:
    """Deserialize a little-endian byte run into an :mod:`array` column."""
    column = array(typecode)
    column.frombytes(data)
    if _BIG_ENDIAN:  # pragma: no cover
        column.byteswap()
    return column


class CachedOrigins:
    """Memoizing origin-ASN resolver: one LPM walk per distinct /64.

    Wraps any ``address -> Optional[int]`` origin callable (a
    :meth:`~repro.net.routing.RoutingTable.origin_asn` bound method,
    ``world.ipv6_origin_asn``, …).  Lookups inside a /64 that contains
    no announcement longer than /64 are answered from a per-/64 cache;
    lookups inside "hot" /64s (those containing a longer-than-/64
    announcement) always fall back to the wrapped per-address LPM, so
    the resolver is exactly equivalent to the callable it wraps.

    ``max_slash64s`` bounds the memo for long-lived processes (a serving
    worker sees an unbounded stream of distinct /64s over its lifetime):
    when set, the cache is LRU — the least-recently-queried /64 is
    evicted once the cap is exceeded.  Eviction only ever forgets a
    memoized answer, never changes one, so a capped resolver stays
    exactly equivalent to the uncapped one (pinned in tests).
    """

    __slots__ = (
        "_origin",
        "_cache",
        "_hot",
        "_max_slash64s",
        "lpm_calls",
        "evictions",
    )

    def __init__(
        self,
        origin: Callable[[int], Optional[int]],
        long_prefixes: Iterable = (),
        max_slash64s: Optional[int] = None,
    ) -> None:
        if max_slash64s is not None and max_slash64s < 1:
            raise ValueError(
                f"max_slash64s must be positive, not {max_slash64s}"
            )
        self._origin = origin
        self._max_slash64s = max_slash64s
        # The uncapped cache stays a plain dict: no recency bookkeeping
        # on the hot path unless a bound was actually requested.
        self._cache: Dict[int, Optional[int]] = (
            OrderedDict() if max_slash64s is not None else {}
        )
        # Any prefix longer than /64 fixes all 64 high bits, so it lies
        # inside exactly one /64 — that /64 can never be memoized.
        self._hot: Set[int] = {
            prefix.network & PREFIX_MASK
            for prefix in long_prefixes
            if prefix.length > 64
        }
        #: Wrapped-LPM invocations actually performed (profiling aid).
        self.lpm_calls = 0
        #: Memo entries dropped to honour ``max_slash64s``.
        self.evictions = 0

    @classmethod
    def from_routing_table(
        cls, table, max_slash64s: Optional[int] = None
    ) -> "CachedOrigins":
        """Wrap a :class:`~repro.net.routing.RoutingTable`."""
        return cls(
            table.origin_asn,
            (routed.prefix for routed in table.routed_prefixes()),
            max_slash64s=max_slash64s,
        )

    @classmethod
    def from_world(
        cls, world, max_slash64s: Optional[int] = None
    ) -> "CachedOrigins":
        """Wrap a world's IPv6 origin lookup and its routing table."""
        return cls(
            world.ipv6_origin_asn,
            (routed.prefix for routed in world.routing.routed_prefixes()),
            max_slash64s=max_slash64s,
        )

    @property
    def hot_slash64s(self) -> Set[int]:
        """/64 keys containing an announcement more specific than /64."""
        return self._hot

    def __call__(self, address: int) -> Optional[int]:
        """Origin ASN of ``address`` (memoized per /64 where sound)."""
        key = address & PREFIX_MASK
        if key in self._hot:
            self.lpm_calls += 1
            return self._origin(address)
        cache = self._cache
        capped = self._max_slash64s is not None
        try:
            asn = cache[key]
        except KeyError:
            self.lpm_calls += 1
            asn = self._origin(address)
            cache[key] = asn
            if capped and len(cache) > self._max_slash64s:
                cache.popitem(last=False)
                self.evictions += 1
            return asn
        if capped:
            cache.move_to_end(key)
        return asn

    def slash64_origin(self, key: int) -> Optional[int]:
        """Origin shared by every address of a non-hot /64 ``key``.

        ``key`` must be a /64 prefix key (low 64 bits zero) that is not
        hot; calling this for a hot /64 raises, because its addresses do
        not share a single origin.
        """
        if key in self._hot:
            raise ValueError(
                f"/64 {key:#x} contains a longer-than-/64 announcement; "
                "resolve its addresses individually"
            )
        return self(key)

    def cache_info(self) -> Dict[str, int]:
        """Cache shape for profiling: distinct /64s, hot /64s, LPM calls."""
        info = {
            "cached_slash64s": len(self._cache),
            "hot_slash64s": len(self._hot),
            "lpm_calls": self.lpm_calls,
        }
        if self._max_slash64s is not None:
            info["max_slash64s"] = self._max_slash64s
            info["evictions"] = self.evictions
        return info


class CorpusIndex:
    """One-pass columnar materialization of an address corpus.

    Build once per corpus (``CorpusIndex.build(corpus, origins)``), then
    every figure/table consumer reads shared columns and memoized
    aggregates instead of re-scanning the corpus.  Rows are in corpus
    record order, so order-sensitive derivations (per-MAC address lists,
    lifetime vectors) are exactly equal to their naive per-consumer
    recomputations.

    Aggregate accessors return internal memoized objects; treat them as
    read-only (``AddressCorpus`` delegation hands out copies).
    """

    __slots__ = (
        "name",
        "addresses",
        "first",
        "last",
        "counts",
        "slash48s",
        "slash64s",
        "iids",
        "entropies",
        "pattern_codes",
        "macs",
        "origins",
        "build_seconds",
        "_slash48_set",
        "_slash64_set",
        "_slash64_counts",
        "_lifetimes",
        "_iid_intervals",
        "_iid_entropies",
        "_eui64_rows",
        "_eui64_intervals",
        "_row_of",
    )

    def __init__(
        self,
        name: str,
        addresses: List[int],
        first: array,
        last: array,
        counts: array,
        slash48s: List[int],
        slash64s: List[int],
        iids: array,
        entropies: array,
        pattern_codes: array,
        macs: array,
        origins: Optional[CachedOrigins] = None,
        build_seconds: float = 0.0,
    ) -> None:
        size = len(addresses)
        for column in (first, last, counts, slash48s, slash64s, iids,
                       entropies, pattern_codes, macs):
            if len(column) != size:
                raise ValueError("index columns must have equal lengths")
        self.name = name
        self.addresses = addresses
        self.first = first
        self.last = last
        self.counts = counts
        self.slash48s = slash48s
        self.slash64s = slash64s
        self.iids = iids
        self.entropies = entropies
        self.pattern_codes = pattern_codes
        self.macs = macs
        self.origins = origins
        self.build_seconds = build_seconds
        self._slash48_set: Optional[Set[int]] = None
        self._slash64_set: Optional[Set[int]] = None
        self._slash64_counts: Optional[Dict[int, int]] = None
        self._lifetimes: Optional[List[float]] = None
        self._iid_intervals: Optional[Dict[int, Tuple[float, float]]] = None
        self._iid_entropies: Optional[Dict[int, float]] = None
        self._eui64_rows: Optional[Dict[int, List[int]]] = None
        self._eui64_intervals: Optional[Dict[int, Tuple[float, float]]] = None
        self._row_of: Optional[Dict[int, int]] = None

    # -- construction ----------------------------------------------------------

    @classmethod
    def build(
        cls,
        corpus,
        origins: Optional[CachedOrigins] = None,
        metrics=None,
    ) -> "CorpusIndex":
        """Materialize all columns from ``corpus`` with a full scan.

        This is the cold path: one pass over every record.  Analysis
        over a segmented corpus should prefer
        :meth:`from_partials` (via
        :meth:`~repro.core.segments.SegmentedCorpusReader.build_index`),
        which folds seal-time partial indexes instead of rescanning.
        ``metrics`` is an optional
        :class:`~repro.obs.MetricsRegistry`; each full scan increments
        ``repro_index_full_rebuilds_total`` so rebuild churn is
        observable.
        """
        import time

        t0 = time.perf_counter()
        size = len(corpus)
        addresses: List[int] = []
        first = array("d", bytes(8 * size))
        last = array("d", bytes(8 * size))
        counts = array("Q", bytes(8 * size))
        slash48s: List[int] = []
        slash64s: List[int] = []
        iids = array("Q", bytes(8 * size))
        add_address = addresses.append
        add_slash48 = slash48s.append
        add_slash64 = slash64s.append
        row = 0
        for address, (first_seen, last_seen, count) in corpus.items():
            add_address(address)
            first[row] = first_seen
            last[row] = last_seen
            counts[row] = count
            add_slash48(address & _SLASH48_MASK)
            add_slash64(address & PREFIX_MASK)
            iids[row] = address & IID_MASK
            row += 1
        # Entropy, pattern class and MAC extraction depend only on the
        # IID column — computed by the vectorized kernels (one pass over
        # the distinct IIDs, numpy when available).
        entropies, pattern_codes, macs, iid_entropies = (
            _kernels.iid_feature_columns(iids)
        )
        index = cls(
            corpus.name,
            addresses,
            first,
            last,
            counts,
            slash48s,
            slash64s,
            iids,
            entropies,
            pattern_codes,
            macs,
            origins=origins,
        )
        index._iid_entropies = iid_entropies
        index.build_seconds = time.perf_counter() - t0
        if metrics is not None:
            metrics.counter(
                "repro_index_full_rebuilds_total",
                "corpus indexes built by a full record scan",
            ).inc()
        return index

    @classmethod
    def from_partials(
        cls,
        name: str,
        partials: Sequence["PartialIndexColumns"],
        origins: Optional[CachedOrigins] = None,
    ) -> "CorpusIndex":
        """Fold per-segment partial indexes into one full index.

        The record fold is the associative, commutative ``(min first,
        max last, summed count)`` every reader applies, and output rows
        are in first-occurrence order across ``partials`` — exactly the
        record order of the corpus
        :meth:`~repro.core.segments.SegmentedCorpusReader.load`
        materializes from the same segments.  The result is therefore
        bit-identical to ``CorpusIndex.build`` over that folded corpus
        (property-test pinned) without re-reading any segment file.
        """
        import time

        t0 = time.perf_counter()
        (
            addresses,
            first,
            last,
            counts,
            entropies,
            pattern_codes,
            macs,
        ) = _kernels.fold_record_columns(partials)
        slash48s = [address & _SLASH48_MASK for address in addresses]
        slash64s = [address & PREFIX_MASK for address in addresses]
        iids = array("Q", bytes(8 * len(addresses)))
        for row, address in enumerate(addresses):
            iids[row] = address & IID_MASK
        index = cls(
            name,
            addresses,
            first,
            last,
            counts,
            slash48s,
            slash64s,
            iids,
            entropies,
            pattern_codes,
            macs,
            origins=origins,
        )
        index.build_seconds = time.perf_counter() - t0
        return index

    # -- append-aware delta maintenance ----------------------------------------

    def _rows(self) -> Dict[int, int]:
        """Address → row mapping (built lazily, maintained by appends)."""
        if self._row_of is None:
            self._row_of = {
                address: row for row, address in enumerate(self.addresses)
            }
        return self._row_of

    def observe(
        self, address: int, first_seen: float, last_seen: float, count: int
    ) -> None:
        """Apply one record mutation in place: the append-aware path.

        ``(first_seen, last_seen, count)`` is the address's record
        *after* the mutation (the corpus's fold already applied).  A new
        address appends a row — derived columns computed via the same
        kernels a rebuild uses — and an existing address overwrites its
        row.  Materialized aggregate memos are updated in place with the
        same min/max folds a rebuild applies, so an index maintained by
        ``observe`` stays bit-identical to a freshly built one
        (property-test pinned).  Unmaterialized memos stay lazy.
        """
        row = self._rows().get(address)
        if row is not None:
            self.first[row] = first_seen
            self.last[row] = last_seen
            self.counts[row] = count
            if self._lifetimes is not None:
                self._lifetimes[row] = last_seen - first_seen
            if self._iid_intervals is not None:
                self._touch_interval(
                    self._iid_intervals, self.iids[row], first_seen, last_seen
                )
            if self._eui64_intervals is not None:
                mac = self.macs[row]
                if mac != NO_MAC:
                    self._touch_interval(
                        self._eui64_intervals, mac, first_seen, last_seen
                    )
            return
        row = len(self.addresses)
        self._row_of[address] = row
        slash48 = address & _SLASH48_MASK
        slash64 = address & PREFIX_MASK
        iid = address & IID_MASK
        entropy, code, mac = _kernels.iid_features(iid)
        if (
            self._iid_entropies is not None
            and iid not in self._iid_entropies
        ):
            self._iid_entropies[iid] = entropy
        self.addresses.append(address)
        self.first.append(first_seen)
        self.last.append(last_seen)
        self.counts.append(count)
        self.slash48s.append(slash48)
        self.slash64s.append(slash64)
        self.iids.append(iid)
        self.entropies.append(entropy)
        self.pattern_codes.append(code)
        self.macs.append(mac)
        if self._slash48_set is not None:
            self._slash48_set.add(slash48)
        if self._slash64_set is not None:
            self._slash64_set.add(slash64)
        if self._slash64_counts is not None:
            self._slash64_counts[slash64] = (
                self._slash64_counts.get(slash64, 0) + 1
            )
        if self._lifetimes is not None:
            self._lifetimes.append(last_seen - first_seen)
        if self._iid_intervals is not None:
            self._touch_interval(
                self._iid_intervals, iid, first_seen, last_seen
            )
        if mac != NO_MAC:
            if self._eui64_rows is not None:
                rows = self._eui64_rows.get(mac)
                if rows is None:
                    self._eui64_rows[mac] = [row]
                else:
                    rows.append(row)
            if self._eui64_intervals is not None:
                self._touch_interval(
                    self._eui64_intervals, mac, first_seen, last_seen
                )

    @staticmethod
    def _touch_interval(
        intervals: Dict[int, Tuple[float, float]],
        key: int,
        first_seen: float,
        last_seen: float,
    ) -> None:
        """Fold one sighting interval into a memoized interval mapping."""
        existing = intervals.get(key)
        if existing is None:
            intervals[key] = (first_seen, last_seen)
            return
        lo, hi = existing
        if first_seen < lo:
            lo = first_seen
        if last_seen > hi:
            hi = last_seen
        intervals[key] = (lo, hi)

    def __len__(self) -> int:
        return len(self.addresses)

    def structural_category(self, row: int) -> AddressCategory:
        """The row's structural pattern class (no IPv4-embedding verdict)."""
        return CATEGORY_BY_CODE[self.pattern_codes[row]]

    # -- memoized aggregate views ------------------------------------------------

    def slash48_set(self) -> Set[int]:
        """Distinct /48 prefix keys (shared memoized set)."""
        if self._slash48_set is None:
            self._slash48_set = set(self.slash48s)
        return self._slash48_set

    def slash64_set(self) -> Set[int]:
        """Distinct /64 prefix keys (shared memoized set)."""
        if self._slash64_set is None:
            self._slash64_set = set(self.slash64s)
        return self._slash64_set

    def slash64_address_counts(self) -> Dict[int, int]:
        """Address count per distinct /64 (shared memoized mapping)."""
        if self._slash64_counts is None:
            counts: Dict[int, int] = {}
            for key in self.slash64s:
                counts[key] = counts.get(key, 0) + 1
            self._slash64_counts = counts
        return self._slash64_counts

    def lifetimes(self) -> List[float]:
        """Per-address lifetimes in row order (shared memoized list)."""
        if self._lifetimes is None:
            self._lifetimes = _kernels.lifetime_column(self.first, self.last)
        return self._lifetimes

    def iid_intervals(self) -> Dict[int, Tuple[float, float]]:
        """Per-IID union sighting intervals (shared memoized mapping)."""
        if self._iid_intervals is None:
            self._iid_intervals = _kernels.iid_interval_map(
                self.iids, self.first, self.last
            )
        return self._iid_intervals

    def iid_entropies(self) -> Dict[int, float]:
        """Normalized entropy per distinct IID (shared memoized mapping)."""
        if self._iid_entropies is None:
            entropies = self.entropies
            self._iid_entropies = {
                iid: entropies[row] for row, iid in enumerate(self.iids)
            }
        return self._iid_entropies

    def entropy_samples(self) -> Sequence[float]:
        """Per-address normalized IID entropy, row order (the Fig. 1 input)."""
        return self.entropies

    def eui64_rows(self) -> Dict[int, List[int]]:
        """Embedded MAC → row indices, in row order (shared memoized)."""
        if self._eui64_rows is None:
            groups: Dict[int, List[int]] = {}
            for row, mac in enumerate(self.macs):
                if mac == NO_MAC:
                    continue
                rows = groups.get(mac)
                if rows is None:
                    groups[mac] = [row]
                else:
                    rows.append(row)
            self._eui64_rows = groups
        return self._eui64_rows

    def eui64_mac_addresses(self) -> Dict[int, List[int]]:
        """Embedded MAC → addresses exposing it (fresh lists)."""
        addresses = self.addresses
        return {
            mac: [addresses[row] for row in rows]
            for mac, rows in self.eui64_rows().items()
        }

    def eui64_mac_intervals(self) -> Dict[int, Tuple[float, float]]:
        """Embedded MAC → union sighting interval over its addresses."""
        if self._eui64_intervals is None:
            first = self.first
            last = self.last
            self._eui64_intervals = {
                mac: (
                    min(first[row] for row in rows),
                    max(last[row] for row in rows),
                )
                for mac, rows in self.eui64_rows().items()
            }
        return self._eui64_intervals

    def rows_in_window(self, start: float, end: float) -> List[int]:
        """Rows whose sighting interval intersects ``[start, end)``."""
        first = self.first
        last = self.last
        return [
            row
            for row in range(len(self.addresses))
            if first[row] < end and last[row] >= start
        ]

    # -- origin aggregation -------------------------------------------------------

    def asn_counts(
        self, origin: Optional[Callable[[int], Optional[int]]] = None
    ) -> Counter:
        """Address count per origin ASN (``None`` for unrouted).

        With a :class:`CachedOrigins` resolver (the attached one by
        default) the tally runs over *distinct /64s* instead of
        addresses, resolving each non-hot /64 exactly once; hot /64s
        (containing a longer-than-/64 announcement) are resolved
        per-address, preserving exact equivalence with the naive loop.
        """
        resolver = self.origins if origin is None else origin
        if resolver is None:
            raise ValueError("no origin resolver attached or supplied")
        counts: Counter = Counter()
        if isinstance(resolver, CachedOrigins):
            hot = resolver.hot_slash64s
            per_slash64 = self.slash64_address_counts()
            live_hot = hot.intersection(per_slash64) if hot else ()
            for key, n in per_slash64.items():
                if key in live_hot:
                    continue
                counts[resolver.slash64_origin(key)] += n
            if live_hot:
                for row, key in enumerate(self.slash64s):
                    if key in live_hot:
                        counts[resolver(self.addresses[row])] += 1
        else:
            for address in self.addresses:
                counts[resolver(address)] += 1
        return counts

    def asn_set(
        self, origin: Optional[Callable[[int], Optional[int]]] = None
    ) -> Set[int]:
        """Distinct origin ASNs (unrouted addresses are skipped)."""
        return {
            asn for asn in self.asn_counts(origin) if asn is not None
        }

    def __repr__(self) -> str:
        return f"CorpusIndex({self.name!r}, {len(self):,} rows)"


class PartialIndexColumns:
    """Per-segment partial index: seal-time columns ready to fold.

    One instance summarizes one sealed segment's corpus: record columns
    (address split into 64-bit halves, first/last/count) plus the
    per-row derived columns (``entropies``/``codes``/``macs``) that are
    pure functions of the IID, in the segment's record order.  The low
    address half **is** the IID, so no separate IID column is stored.
    Folding any set of partials with
    :meth:`CorpusIndex.from_partials` reproduces ``CorpusIndex.build``
    over the folded segments bit-for-bit.

    The columnar payload (:meth:`to_payload`) is the byte layout the
    segment store persists next to each ``.seg`` file; columns are
    little-endian on disk regardless of host byte order.  Framing (the
    ``RPI1``/``RPIF`` magic and CRC footer) is owned by
    :mod:`repro.core.segments`.
    """

    __slots__ = (
        "hi",
        "lo",
        "first",
        "last",
        "counts",
        "entropies",
        "codes",
        "macs",
    )

    #: Serialized column order and typecodes.
    COLUMN_SPEC: Tuple[Tuple[str, str], ...] = (
        ("hi", "Q"),
        ("lo", "Q"),
        ("first", "d"),
        ("last", "d"),
        ("counts", "Q"),
        ("entropies", "d"),
        ("codes", "B"),
        ("macs", "Q"),
    )

    def __init__(
        self,
        hi: array,
        lo: array,
        first: array,
        last: array,
        counts: array,
        entropies: array,
        codes: array,
        macs: array,
    ) -> None:
        size = len(hi)
        for column in (lo, first, last, counts, entropies, codes, macs):
            if len(column) != size:
                raise ValueError(
                    "partial index columns must have equal lengths"
                )
        self.hi = hi
        self.lo = lo
        self.first = first
        self.last = last
        self.counts = counts
        self.entropies = entropies
        self.codes = codes
        self.macs = macs

    def __len__(self) -> int:
        return len(self.lo)

    @classmethod
    def from_corpus(cls, corpus) -> "PartialIndexColumns":
        """Summarize a (segment's) corpus.

        Rows are in ascending address order — the canonical record
        order :func:`~repro.core.storage.save_corpus_binary` serializes
        — so a partial built from the in-memory buffer at seal time and
        one rebuilt from the sealed file are identical, and the fold's
        first-occurrence order matches a segment-by-segment merge of
        the files on disk.
        """
        size = len(corpus)
        hi = array("Q", bytes(8 * size))
        lo = array("Q", bytes(8 * size))
        first = array("d", bytes(8 * size))
        last = array("d", bytes(8 * size))
        counts = array("Q", bytes(8 * size))
        row = 0
        for address, (first_seen, last_seen, count) in sorted(corpus.items()):
            hi[row] = address >> 64
            lo[row] = address & IID_MASK
            first[row] = first_seen
            last[row] = last_seen
            counts[row] = count
            row += 1
        entropies, codes, macs, _ = _kernels.iid_feature_columns(lo)
        return cls(hi, lo, first, last, counts, entropies, codes, macs)

    def to_payload(self) -> bytes:
        """Serialize all columns (little-endian, :data:`COLUMN_SPEC` order)."""
        return b"".join(
            _column_le_bytes(getattr(self, name))
            for name, _ in self.COLUMN_SPEC
        )

    @classmethod
    def payload_size(cls, rows: int) -> int:
        """Exact byte length of a ``rows``-row payload."""
        return sum(
            rows * array(typecode).itemsize
            for _, typecode in cls.COLUMN_SPEC
        )

    @classmethod
    def from_payload(cls, data: bytes, rows: int) -> "PartialIndexColumns":
        """Inverse of :meth:`to_payload` for a known row count."""
        if len(data) != cls.payload_size(rows):
            raise ValueError(
                f"partial index payload is {len(data)} bytes; "
                f"{rows} rows need {cls.payload_size(rows)}"
            )
        columns = []
        offset = 0
        for _, typecode in cls.COLUMN_SPEC:
            width = rows * array(typecode).itemsize
            columns.append(
                _column_from_le(typecode, data[offset:offset + width])
            )
            offset += width
        return cls(*columns)
