"""Single-pass columnar corpus index with cached LPM origin resolution.

The paper's entire analysis section (§4–§5) is aggregate queries over one
7.9B-address corpus.  Re-walking the corpus once per figure — and walking
the 128-bit routing trie once per address per consumer — makes analysis
cost O(figures × addresses × trie-depth).  Addresses cluster under few
prefixes ("Clusters in the Expanse"; this paper's /48- and /64-level
aggregation), so the right shape is the opposite: resolve each structural
property of an address exactly once, resolve origin once per distinct
/64, and let every figure and table read precomputed columns.

Two classes implement that:

* :class:`CorpusIndex` — a one-pass columnar materialization of an
  :class:`~repro.core.corpus.AddressCorpus`: parallel columns for
  address, first/last/count, /48 key, /64 key, IID, normalized IID
  entropy, structural pattern class and extracted EUI-64 MAC, plus
  lazily-memoized aggregate views (prefix sets, lifetimes, IID
  intervals, per-MAC groupings, origin-AS counts) shared by every
  consumer.
* :class:`CachedOrigins` — a longest-prefix-match memoizer: origin ASN
  is computed once per distinct /64 rather than once per address per
  consumer.  **Correctness condition**: all addresses of a /64 share an
  origin only when no announcement *longer* than /64 intersects that
  /64.  Any announcement with length > 64 is wholly contained in a
  single /64, so the resolver precomputes that "hot" /64 set and falls
  back to per-address LPM inside it.

Columns use :mod:`array` storage where the element width permits
(timestamps, counts, 64-bit IIDs/MACs, entropy, pattern codes); 128-bit
addresses and prefix keys stay in plain lists.
"""

from __future__ import annotations

from array import array
from collections import Counter
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

# Entropy-class thresholds are inlined into the build pass so each IID
# is classified without a second entropy computation.
from ..addr.entropy import (
    HIGH_THRESHOLD,
    LOW_THRESHOLD,
    normalized_iid_entropy,
)
from ..addr.eui64 import looks_like_eui64, iid_to_mac
from ..addr.ipv6 import IID_MASK, PREFIX_MASK
from ..addr.patterns import (
    AddressCategory,
    CATEGORY_BY_CODE,
    STRUCTURAL_CODES,
)

__all__ = ["CachedOrigins", "CorpusIndex", "NO_MAC", "STRUCTURAL_CODES"]

#: Sentinel in the MAC column for rows whose IID is not EUI-64 (MACs are
#: 48-bit, so this 64-bit value can never collide with a real one).
NO_MAC = (1 << 64) - 1

_SLASH48_MASK = ~((1 << 80) - 1)

_ZEROES = STRUCTURAL_CODES[AddressCategory.ZEROES]
_LOW_BYTE = STRUCTURAL_CODES[AddressCategory.LOW_BYTE]
_LOW_2_BYTES = STRUCTURAL_CODES[AddressCategory.LOW_2_BYTES]
_LOW_ENTROPY = STRUCTURAL_CODES[AddressCategory.LOW_ENTROPY]
_MEDIUM_ENTROPY = STRUCTURAL_CODES[AddressCategory.MEDIUM_ENTROPY]
_HIGH_ENTROPY = STRUCTURAL_CODES[AddressCategory.HIGH_ENTROPY]


class CachedOrigins:
    """Memoizing origin-ASN resolver: one LPM walk per distinct /64.

    Wraps any ``address -> Optional[int]`` origin callable (a
    :meth:`~repro.net.routing.RoutingTable.origin_asn` bound method,
    ``world.ipv6_origin_asn``, …).  Lookups inside a /64 that contains
    no announcement longer than /64 are answered from a per-/64 cache;
    lookups inside "hot" /64s (those containing a longer-than-/64
    announcement) always fall back to the wrapped per-address LPM, so
    the resolver is exactly equivalent to the callable it wraps.
    """

    __slots__ = ("_origin", "_cache", "_hot", "lpm_calls")

    def __init__(
        self,
        origin: Callable[[int], Optional[int]],
        long_prefixes: Iterable = (),
    ) -> None:
        self._origin = origin
        self._cache: Dict[int, Optional[int]] = {}
        # Any prefix longer than /64 fixes all 64 high bits, so it lies
        # inside exactly one /64 — that /64 can never be memoized.
        self._hot: Set[int] = {
            prefix.network & PREFIX_MASK
            for prefix in long_prefixes
            if prefix.length > 64
        }
        #: Wrapped-LPM invocations actually performed (profiling aid).
        self.lpm_calls = 0

    @classmethod
    def from_routing_table(cls, table) -> "CachedOrigins":
        """Wrap a :class:`~repro.net.routing.RoutingTable`."""
        return cls(
            table.origin_asn,
            (routed.prefix for routed in table.routed_prefixes()),
        )

    @classmethod
    def from_world(cls, world) -> "CachedOrigins":
        """Wrap a world's IPv6 origin lookup and its routing table."""
        return cls(
            world.ipv6_origin_asn,
            (routed.prefix for routed in world.routing.routed_prefixes()),
        )

    @property
    def hot_slash64s(self) -> Set[int]:
        """/64 keys containing an announcement more specific than /64."""
        return self._hot

    def __call__(self, address: int) -> Optional[int]:
        """Origin ASN of ``address`` (memoized per /64 where sound)."""
        key = address & PREFIX_MASK
        if key in self._hot:
            self.lpm_calls += 1
            return self._origin(address)
        try:
            return self._cache[key]
        except KeyError:
            self.lpm_calls += 1
            asn = self._origin(address)
            self._cache[key] = asn
            return asn

    def slash64_origin(self, key: int) -> Optional[int]:
        """Origin shared by every address of a non-hot /64 ``key``.

        ``key`` must be a /64 prefix key (low 64 bits zero) that is not
        hot; calling this for a hot /64 raises, because its addresses do
        not share a single origin.
        """
        if key in self._hot:
            raise ValueError(
                f"/64 {key:#x} contains a longer-than-/64 announcement; "
                "resolve its addresses individually"
            )
        return self(key)

    def cache_info(self) -> Dict[str, int]:
        """Cache shape for profiling: distinct /64s, hot /64s, LPM calls."""
        return {
            "cached_slash64s": len(self._cache),
            "hot_slash64s": len(self._hot),
            "lpm_calls": self.lpm_calls,
        }


class CorpusIndex:
    """One-pass columnar materialization of an address corpus.

    Build once per corpus (``CorpusIndex.build(corpus, origins)``), then
    every figure/table consumer reads shared columns and memoized
    aggregates instead of re-scanning the corpus.  Rows are in corpus
    record order, so order-sensitive derivations (per-MAC address lists,
    lifetime vectors) are exactly equal to their naive per-consumer
    recomputations.

    Aggregate accessors return internal memoized objects; treat them as
    read-only (``AddressCorpus`` delegation hands out copies).
    """

    __slots__ = (
        "name",
        "addresses",
        "first",
        "last",
        "counts",
        "slash48s",
        "slash64s",
        "iids",
        "entropies",
        "pattern_codes",
        "macs",
        "origins",
        "build_seconds",
        "_slash48_set",
        "_slash64_set",
        "_slash64_counts",
        "_lifetimes",
        "_iid_intervals",
        "_iid_entropies",
        "_eui64_rows",
        "_eui64_intervals",
    )

    def __init__(
        self,
        name: str,
        addresses: List[int],
        first: array,
        last: array,
        counts: array,
        slash48s: List[int],
        slash64s: List[int],
        iids: array,
        entropies: array,
        pattern_codes: array,
        macs: array,
        origins: Optional[CachedOrigins] = None,
        build_seconds: float = 0.0,
    ) -> None:
        size = len(addresses)
        for column in (first, last, counts, slash48s, slash64s, iids,
                       entropies, pattern_codes, macs):
            if len(column) != size:
                raise ValueError("index columns must have equal lengths")
        self.name = name
        self.addresses = addresses
        self.first = first
        self.last = last
        self.counts = counts
        self.slash48s = slash48s
        self.slash64s = slash64s
        self.iids = iids
        self.entropies = entropies
        self.pattern_codes = pattern_codes
        self.macs = macs
        self.origins = origins
        self.build_seconds = build_seconds
        self._slash48_set: Optional[Set[int]] = None
        self._slash64_set: Optional[Set[int]] = None
        self._slash64_counts: Optional[Dict[int, int]] = None
        self._lifetimes: Optional[List[float]] = None
        self._iid_intervals: Optional[Dict[int, Tuple[float, float]]] = None
        self._iid_entropies: Optional[Dict[int, float]] = None
        self._eui64_rows: Optional[Dict[int, List[int]]] = None
        self._eui64_intervals: Optional[Dict[int, Tuple[float, float]]] = None

    # -- construction ----------------------------------------------------------

    @classmethod
    def build(
        cls, corpus, origins: Optional[CachedOrigins] = None
    ) -> "CorpusIndex":
        """Materialize all columns from ``corpus`` in a single pass."""
        import time

        t0 = time.perf_counter()
        size = len(corpus)
        addresses: List[int] = []
        first = array("d", bytes(8 * size))
        last = array("d", bytes(8 * size))
        counts = array("Q", bytes(8 * size))
        slash48s: List[int] = []
        slash64s: List[int] = []
        iids = array("Q", bytes(8 * size))
        entropies = array("d", bytes(8 * size))
        pattern_codes = array("B", bytes(size))
        macs = array("Q", bytes(8 * size))
        # Entropy, pattern class and MAC extraction depend only on the
        # IID; memoizing per distinct IID collapses repeated IIDs (::1 in
        # thousands of /64s, EUI-64 IIDs surviving prefix rotation) to
        # one computation.  The per-IID union intervals and per-address
        # lifetimes are accumulated in the same pass — the values are
        # already in hand as Python objects, so deriving them here avoids
        # a later full-column re-scan (array reads box every element).
        info_of: Dict[int, Tuple[float, int, int]] = {}
        intervals: Dict[int, List[float]] = {}
        lifetimes: List[float] = []
        info_get = info_of.get
        interval_get = intervals.get
        add_address = addresses.append
        add_slash48 = slash48s.append
        add_slash64 = slash64s.append
        add_lifetime = lifetimes.append
        row = 0
        for address, (first_seen, last_seen, count) in corpus.items():
            add_address(address)
            first[row] = first_seen
            last[row] = last_seen
            counts[row] = count
            add_slash48(address & _SLASH48_MASK)
            add_slash64(address & PREFIX_MASK)
            iid = address & IID_MASK
            iids[row] = iid
            info = info_get(iid)
            if info is None:
                entropy = normalized_iid_entropy(iid)
                info = (
                    entropy,
                    _structural_code(iid, entropy),
                    iid_to_mac(iid) if looks_like_eui64(iid) else NO_MAC,
                )
                info_of[iid] = info
            entropies[row] = info[0]
            pattern_codes[row] = info[1]
            macs[row] = info[2]
            add_lifetime(last_seen - first_seen)
            interval = interval_get(iid)
            if interval is None:
                intervals[iid] = [first_seen, last_seen]
            else:
                if first_seen < interval[0]:
                    interval[0] = first_seen
                if last_seen > interval[1]:
                    interval[1] = last_seen
            row += 1
        index = cls(
            corpus.name,
            addresses,
            first,
            last,
            counts,
            slash48s,
            slash64s,
            iids,
            entropies,
            pattern_codes,
            macs,
            origins=origins,
        )
        index._lifetimes = lifetimes
        index._iid_intervals = {
            iid: (interval[0], interval[1])
            for iid, interval in intervals.items()
        }
        index._iid_entropies = {
            iid: info[0] for iid, info in info_of.items()
        }
        index.build_seconds = time.perf_counter() - t0
        return index

    def __len__(self) -> int:
        return len(self.addresses)

    def structural_category(self, row: int) -> AddressCategory:
        """The row's structural pattern class (no IPv4-embedding verdict)."""
        return CATEGORY_BY_CODE[self.pattern_codes[row]]

    # -- memoized aggregate views ------------------------------------------------

    def slash48_set(self) -> Set[int]:
        """Distinct /48 prefix keys (shared memoized set)."""
        if self._slash48_set is None:
            self._slash48_set = set(self.slash48s)
        return self._slash48_set

    def slash64_set(self) -> Set[int]:
        """Distinct /64 prefix keys (shared memoized set)."""
        if self._slash64_set is None:
            self._slash64_set = set(self.slash64s)
        return self._slash64_set

    def slash64_address_counts(self) -> Dict[int, int]:
        """Address count per distinct /64 (shared memoized mapping)."""
        if self._slash64_counts is None:
            counts: Dict[int, int] = {}
            for key in self.slash64s:
                counts[key] = counts.get(key, 0) + 1
            self._slash64_counts = counts
        return self._slash64_counts

    def lifetimes(self) -> List[float]:
        """Per-address lifetimes in row order (shared memoized list)."""
        if self._lifetimes is None:
            last = self.last
            self._lifetimes = [
                last[row] - first for row, first in enumerate(self.first)
            ]
        return self._lifetimes

    def iid_intervals(self) -> Dict[int, Tuple[float, float]]:
        """Per-IID union sighting intervals (shared memoized mapping)."""
        if self._iid_intervals is None:
            intervals: Dict[int, List[float]] = {}
            first = self.first
            last = self.last
            for row, iid in enumerate(self.iids):
                existing = intervals.get(iid)
                if existing is None:
                    intervals[iid] = [first[row], last[row]]
                else:
                    if first[row] < existing[0]:
                        existing[0] = first[row]
                    if last[row] > existing[1]:
                        existing[1] = last[row]
            self._iid_intervals = {
                iid: (interval[0], interval[1])
                for iid, interval in intervals.items()
            }
        return self._iid_intervals

    def iid_entropies(self) -> Dict[int, float]:
        """Normalized entropy per distinct IID (shared memoized mapping)."""
        if self._iid_entropies is None:
            entropies = self.entropies
            self._iid_entropies = {
                iid: entropies[row] for row, iid in enumerate(self.iids)
            }
        return self._iid_entropies

    def entropy_samples(self) -> Sequence[float]:
        """Per-address normalized IID entropy, row order (the Fig. 1 input)."""
        return self.entropies

    def eui64_rows(self) -> Dict[int, List[int]]:
        """Embedded MAC → row indices, in row order (shared memoized)."""
        if self._eui64_rows is None:
            groups: Dict[int, List[int]] = {}
            for row, mac in enumerate(self.macs):
                if mac == NO_MAC:
                    continue
                rows = groups.get(mac)
                if rows is None:
                    groups[mac] = [row]
                else:
                    rows.append(row)
            self._eui64_rows = groups
        return self._eui64_rows

    def eui64_mac_addresses(self) -> Dict[int, List[int]]:
        """Embedded MAC → addresses exposing it (fresh lists)."""
        addresses = self.addresses
        return {
            mac: [addresses[row] for row in rows]
            for mac, rows in self.eui64_rows().items()
        }

    def eui64_mac_intervals(self) -> Dict[int, Tuple[float, float]]:
        """Embedded MAC → union sighting interval over its addresses."""
        if self._eui64_intervals is None:
            first = self.first
            last = self.last
            self._eui64_intervals = {
                mac: (
                    min(first[row] for row in rows),
                    max(last[row] for row in rows),
                )
                for mac, rows in self.eui64_rows().items()
            }
        return self._eui64_intervals

    def rows_in_window(self, start: float, end: float) -> List[int]:
        """Rows whose sighting interval intersects ``[start, end)``."""
        first = self.first
        last = self.last
        return [
            row
            for row in range(len(self.addresses))
            if first[row] < end and last[row] >= start
        ]

    # -- origin aggregation -------------------------------------------------------

    def asn_counts(
        self, origin: Optional[Callable[[int], Optional[int]]] = None
    ) -> Counter:
        """Address count per origin ASN (``None`` for unrouted).

        With a :class:`CachedOrigins` resolver (the attached one by
        default) the tally runs over *distinct /64s* instead of
        addresses, resolving each non-hot /64 exactly once; hot /64s
        (containing a longer-than-/64 announcement) are resolved
        per-address, preserving exact equivalence with the naive loop.
        """
        resolver = self.origins if origin is None else origin
        if resolver is None:
            raise ValueError("no origin resolver attached or supplied")
        counts: Counter = Counter()
        if isinstance(resolver, CachedOrigins):
            hot = resolver.hot_slash64s
            per_slash64 = self.slash64_address_counts()
            live_hot = hot.intersection(per_slash64) if hot else ()
            for key, n in per_slash64.items():
                if key in live_hot:
                    continue
                counts[resolver.slash64_origin(key)] += n
            if live_hot:
                for row, key in enumerate(self.slash64s):
                    if key in live_hot:
                        counts[resolver(self.addresses[row])] += 1
        else:
            for address in self.addresses:
                counts[resolver(address)] += 1
        return counts

    def asn_set(
        self, origin: Optional[Callable[[int], Optional[int]]] = None
    ) -> Set[int]:
        """Distinct origin ASNs (unrouted addresses are skipped)."""
        return {
            asn for asn in self.asn_counts(origin) if asn is not None
        }

    def __repr__(self) -> str:
        return f"CorpusIndex({self.name!r}, {len(self):,} rows)"


def _structural_code(iid: int, entropy: float) -> int:
    """Structural pattern code of an IID given its precomputed entropy.

    Mirrors :func:`repro.addr.patterns.classify_iid_structurally` with
    ``ipv4_embedded=False``, reusing the entropy already computed in the
    build pass.
    """
    if iid == 0:
        return _ZEROES
    if iid <= 0xFF:
        return _LOW_BYTE
    if iid <= 0xFFFF:
        return _LOW_2_BYTES
    if entropy >= HIGH_THRESHOLD:
        return _HIGH_ENTROPY
    if entropy >= LOW_THRESHOLD:
        return _MEDIUM_ENTROPY
    return _LOW_ENTROPY
