"""Ethics-aware dataset release (paper §3 "Ethical Considerations", §6).

The paper's corpus cannot be released at full granularity: EUI-64 lower
bits identify devices (and via §5.3, their street addresses).  The
authors therefore publish only the active /48 prefixes.  This module
implements that release format plus the accompanying safety audit: a
verification pass proving that no interface identifiers, embedded MACs,
or full addresses survive truncation.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, TextIO, Tuple

from ..addr.eui64 import extract_mac
from ..addr.ipv6 import format_address, slash48_of
from .corpus import AddressCorpus

__all__ = ["ReleaseArtifact", "build_release", "verify_release_safety"]

#: Text of the data-handling note shipped with every release.
ETHICS_NOTE = """\
# Data release — /48-aggregated active prefixes
#
# Full addresses are withheld: IPv6 interface identifiers can uniquely
# identify a device (EUI-64 embeds its MAC address) and, correlated with
# public wardriving data, geolocate it.  Per the guidance in "IPv6
# Hitlists at Scale: Be Careful What You Wish For" (SIGCOMM 2023), only
# /48 prefixes and per-prefix address counts are published.
"""


@dataclass(frozen=True)
class ReleaseArtifact:
    """A /48-truncated release of a corpus."""

    source_name: str
    prefix_counts: Dict[int, int]  # /48 base address -> address count

    @property
    def prefix_count(self) -> int:
        """Number of released /48s."""
        return len(self.prefix_counts)

    @property
    def address_count(self) -> int:
        """Total addresses the release aggregates (not released raw)."""
        return sum(self.prefix_counts.values())

    def lines(self) -> List[str]:
        """The release file's data lines, sorted by prefix."""
        return [
            f"{format_address(prefix)}/48,{count}"
            for prefix, count in sorted(self.prefix_counts.items())
        ]

    def write(self, stream: TextIO) -> None:
        """Write the release (ethics note + CSV lines) to a stream."""
        stream.write(ETHICS_NOTE)
        stream.write("prefix,addresses\n")
        for line in self.lines():
            stream.write(line + "\n")


def build_release(corpus: AddressCorpus) -> ReleaseArtifact:
    """Aggregate a corpus to its public /48-level release."""
    counts: Counter = Counter()
    for address in corpus.addresses():
        counts[slash48_of(address)] += 1
    return ReleaseArtifact(source_name=corpus.name, prefix_counts=dict(counts))


def verify_release_safety(artifact: ReleaseArtifact) -> List[str]:
    """Audit a release for identifier leakage; returns violations.

    Checks that every released prefix is /48-aligned (no IID or subnet
    bits survive) and that no prefix decodes as an EUI-64 carrier — a
    released value with low 80 bits set would leak exactly what the
    truncation exists to remove.  An empty return means the release is
    safe to publish.
    """
    violations = []
    for prefix in artifact.prefix_counts:
        if prefix & ((1 << 80) - 1):
            violations.append(
                f"prefix {format_address(prefix)} has bits below /48"
            )
        if extract_mac(prefix) is not None:
            violations.append(
                f"prefix {format_address(prefix)} leaks an embedded MAC"
            )
    return violations
