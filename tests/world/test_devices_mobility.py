"""Tests for repro.world.devices and repro.world.mobility."""

import pytest

from repro.ntp.client import OperatingSystem, TimeSource
from repro.world.clock import DAY, HOUR
from repro.world.devices import Device, DeviceType
from repro.world.mobility import CommuterPlan, ProviderChangePlan, StaticPlan
from repro.world.strategies import LowByteStrategy


def make_device(**overrides):
    kwargs = dict(
        device_id=1,
        device_type=DeviceType.LAPTOP,
        os_family=OperatingSystem.LINUX_UBUNTU,
        strategy=LowByteStrategy(5),
        root_seed=7,
    )
    kwargs.update(overrides)
    return Device(**kwargs)


class TestDeviceType:
    def test_infrastructure_flags(self):
        assert DeviceType.SERVER.is_infrastructure
        assert DeviceType.CPE_ROUTER.is_infrastructure
        assert not DeviceType.SMARTPHONE.is_infrastructure

    def test_mobile_flag(self):
        assert DeviceType.SMARTPHONE.is_mobile
        assert not DeviceType.IOT.is_mobile


class TestDevice:
    def test_time_source_from_os(self):
        device = make_device(os_family=OperatingSystem.WINDOWS)
        assert device.time_source is TimeSource.TIME_WINDOWS
        assert not device.uses_pool

    def test_pool_user(self):
        device = make_device(os_family=OperatingSystem.IOT_GENERIC)
        assert device.uses_pool

    def test_dhcp_override(self):
        device = make_device(
            os_family=OperatingSystem.WINDOWS,
            dhcp_time_source=TimeSource.POOL,
        )
        assert device.uses_pool

    def test_address_composition(self):
        device = make_device()
        prefix = 0x20010DB8 << 96
        assert device.address_at(0.0, prefix) == prefix | 5

    def test_validation(self):
        with pytest.raises(ValueError):
            make_device(queries_per_day=-1)
        with pytest.raises(ValueError):
            make_device(subnet_index=-1)

    def test_query_counts_deterministic(self):
        a = make_device()
        b = make_device()
        assert [a.query_count_on(day) for day in range(10)] == [
            b.query_count_on(day) for day in range(10)
        ]

    def test_query_counts_near_rate(self):
        device = make_device(queries_per_day=4.0)
        total = sum(device.query_count_on(day) for day in range(300))
        assert 3.0 < total / 300 < 5.0

    def test_zero_rate_never_queries(self):
        device = make_device(queries_per_day=0.0)
        assert all(device.query_count_on(day) == 0 for day in range(30))
        assert device.query_offsets_on(0) == []

    def test_query_offsets_sorted_in_day(self):
        device = make_device(queries_per_day=6.0)
        for day in range(20):
            offsets = device.query_offsets_on(day)
            assert offsets == sorted(offsets)
            assert all(0.0 <= offset < DAY for offset in offsets)
            assert len(offsets) == device.query_count_on(day)

    def test_current_network_defaults_to_home(self):
        device = make_device()
        device.home_network_id = 12
        assert device.current_network_id(0.0) == 12

    def test_current_network_uses_plan(self):
        device = make_device()
        device.home_network_id = 12
        device.mobility_plan = StaticPlan(34)
        assert device.current_network_id(0.0) == 34

    def test_no_home_returns_none(self):
        assert make_device().current_network_id(0.0) is None


class TestStaticPlan:
    def test_constant(self):
        plan = StaticPlan(5)
        assert plan.network_id_at(0.0) == 5
        assert plan.network_id_at(1e9) == 5
        assert plan.networks() == (5,)


class TestProviderChangePlan:
    def test_switches_once(self):
        plan = ProviderChangePlan(1, 2, switch_time=100.0)
        assert plan.network_id_at(99.9) == 1
        assert plan.network_id_at(100.0) == 2
        assert plan.network_id_at(1e9) == 2
        assert plan.networks() == (1, 2)
        assert plan.switch_time == 100.0

    def test_rejects_no_change(self):
        with pytest.raises(ValueError):
            ProviderChangePlan(1, 1, 0.0)


class TestCommuterPlan:
    def _plan(self, away=0.4):
        return CommuterPlan(
            home_id=1, cellular_id=2, root_seed=3, device_key=9,
            away_probability=away,
        )

    def test_oscillates(self):
        plan = self._plan()
        seen = {plan.network_id_at(block * 6 * HOUR) for block in range(200)}
        assert seen == {1, 2}

    def test_stable_within_block(self):
        plan = self._plan()
        assert plan.network_id_at(10.0) == plan.network_id_at(6 * HOUR - 10.0)

    def test_away_fraction_tracks_probability(self):
        plan = self._plan(away=0.3)
        blocks = 2000
        away = sum(
            plan.network_id_at(block * 6 * HOUR) == 2 for block in range(blocks)
        )
        assert abs(away / blocks - 0.3) < 0.05

    def test_extremes(self):
        always_home = self._plan(away=0.0)
        assert all(
            always_home.network_id_at(b * 6 * HOUR) == 1 for b in range(50)
        )
        always_away = self._plan(away=1.0)
        assert all(
            always_away.network_id_at(b * 6 * HOUR) == 2 for b in range(50)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            CommuterPlan(1, 1, 0, 0)
        with pytest.raises(ValueError):
            CommuterPlan(1, 2, 0, 0, away_probability=1.5)
        with pytest.raises(ValueError):
            CommuterPlan(1, 2, 0, 0, block_seconds=0.0)

    def test_networks(self):
        assert self._plan().networks() == (1, 2)
