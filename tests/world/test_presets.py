"""Tests for repro.world.presets."""

import pytest

from repro.world import WorldConfig, build_world, preset_config, preset_names
from repro.world.presets import PRESETS


class TestPresets:
    def test_names_ordered_smallest_first(self):
        names = preset_names()
        assert names[0] == "tiny"
        sizes = [PRESETS[name][3] for name in names]  # home networks
        assert sizes == sorted(sizes)

    def test_config_fields(self):
        config = preset_config("tiny", seed=3)
        assert isinstance(config, WorldConfig)
        assert config.seed == 3
        assert config.n_home_networks == PRESETS["tiny"][3]

    def test_overrides(self):
        config = preset_config("tiny", outage_as_count=2)
        assert config.outage_as_count == 2

    def test_unknown_preset(self):
        with pytest.raises(ValueError):
            preset_config("galactic")

    def test_tiny_builds(self):
        world = build_world(preset_config("tiny", seed=1))
        stats = world.stats()
        assert stats["vantages"] == 27
        assert stats["devices"] > 100

    def test_presets_scale_monotonically(self):
        tiny = preset_config("tiny")
        small = preset_config("small")
        medium = preset_config("medium")
        assert (
            tiny.n_home_networks
            < small.n_home_networks
            < medium.n_home_networks
        )
