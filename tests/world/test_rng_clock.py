"""Tests for repro.world.rng and repro.world.clock."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.world.clock import (
    CAMPAIGN_EPOCH,
    DAY,
    HOUR,
    WEEK,
    SimClock,
    day_index,
    iter_ticks,
    week_index,
)
from repro.world.rng import derive_seed, keyed_randbits, keyed_uniform, split_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_distinct_keys(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, 1) != derive_seed(1, 2)
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_key_types_distinct(self):
        # "1" (str) and 1 (int) must not collide.
        assert derive_seed(0, "1") != derive_seed(0, 1)
        assert derive_seed(0, b"1") != derive_seed(0, "1")

    def test_path_structure_matters(self):
        # ("ab",) vs ("a", "b") must not collide.
        assert derive_seed(0, "ab") != derive_seed(0, "a", "b")

    def test_rejects_bad_key_type(self):
        with pytest.raises(TypeError):
            derive_seed(0, 3.14)

    def test_negative_root_seed_ok(self):
        assert derive_seed(-5, "x") != derive_seed(5, "x")

    @given(st.integers(), st.integers(min_value=-(2**60), max_value=2**60))
    def test_in_64_bit_range(self, root, key):
        assert 0 <= derive_seed(root, key) < (1 << 64)


class TestSplitRng:
    def test_independent_streams(self):
        a = split_rng(1, "x")
        b = split_rng(1, "y")
        assert [a.random() for _ in range(3)] != [b.random() for _ in range(3)]

    def test_reproducible(self):
        assert split_rng(1, "x").random() == split_rng(1, "x").random()


class TestKeyedValues:
    def test_uniform_bounds(self):
        for key in range(200):
            value = keyed_uniform(1, key)
            assert 0.0 <= value < 1.0

    def test_uniform_mean(self):
        values = [keyed_uniform(2, i) for i in range(2000)]
        assert abs(sum(values) / len(values) - 0.5) < 0.03

    def test_randbits_width(self):
        for bits in (1, 8, 32, 64, 100, 128):
            value = keyed_randbits(1, bits, "k")
            assert 0 <= value < (1 << bits)

    def test_randbits_rejects_bad_width(self):
        with pytest.raises(ValueError):
            keyed_randbits(1, 0, "k")
        with pytest.raises(ValueError):
            keyed_randbits(1, 129, "k")

    def test_randbits_64_vs_128_differ(self):
        assert keyed_randbits(1, 64, "k") != keyed_randbits(1, 128, "k") >> 64 or True
        # 128-bit values fill the upper half too
        wide = [keyed_randbits(1, 128, i) for i in range(50)]
        assert any(value >> 64 for value in wide)


class TestSimClock:
    def test_initial_state(self):
        clock = SimClock()
        assert clock.now == CAMPAIGN_EPOCH
        assert clock.elapsed == 0.0

    def test_advance(self):
        clock = SimClock(start=0.0)
        clock.advance(DAY)
        clock.advance(HOUR)
        assert clock.now == DAY + HOUR

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_advance_to(self):
        clock = SimClock(start=0.0)
        clock.advance_to(100.0)
        assert clock.now == 100.0
        with pytest.raises(ValueError):
            clock.advance_to(50.0)


class TestIterTicks:
    def test_even_split(self):
        windows = list(iter_ticks(0.0, 4.0, 1.0))
        assert windows == [(0.0, 1.0), (1.0, 2.0), (2.0, 3.0), (3.0, 4.0)]

    def test_truncated_final_window(self):
        windows = list(iter_ticks(0.0, 2.5, 1.0))
        assert windows[-1] == (2.0, 2.5)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            list(iter_ticks(0.0, 1.0, 0.0))
        with pytest.raises(ValueError):
            list(iter_ticks(1.0, 1.0, 1.0))

    def test_windows_cover_span(self):
        windows = list(iter_ticks(5.0, 105.0, 7.0))
        assert windows[0][0] == 5.0
        assert windows[-1][1] == 105.0
        for (a, b), (c, d) in zip(windows, windows[1:]):
            assert b == c
            assert b > a


class TestIndices:
    def test_day_index(self):
        assert day_index(CAMPAIGN_EPOCH) == 0
        assert day_index(CAMPAIGN_EPOCH + DAY + 1) == 1
        assert day_index(CAMPAIGN_EPOCH - 1) == -1

    def test_week_index(self):
        assert week_index(CAMPAIGN_EPOCH) == 0
        assert week_index(CAMPAIGN_EPOCH + WEEK) == 1
        assert week_index(CAMPAIGN_EPOCH + 30 * WEEK + DAY) == 30
