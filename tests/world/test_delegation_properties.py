"""Property-based tests for the prefix-delegation scheme.

The rotation scheme is the foundation the probe oracle stands on: if the
customer↔slot mapping ever stopped being a bijection, two customers
would silently share a prefix and every downstream analysis would be
corrupt.  These tests let hypothesis hunt for parameter combinations
that break it.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.prefixes import Prefix
from repro.world.ases import PrefixDelegation
from repro.world.clock import DAY

BLOCK = Prefix(0x2A << 120, 40)


@st.composite
def delegations(draw):
    delegated_length = draw(st.sampled_from([48, 52, 56, 60, 64]))
    capacity = 1 << (delegated_length - BLOCK.length)
    rotating = draw(st.integers(min_value=0, max_value=min(64, capacity // 2)))
    static = draw(
        st.integers(min_value=0, max_value=min(64, capacity - capacity // 2))
    )
    interval = draw(st.sampled_from([0.5 * DAY, DAY, 7 * DAY, 45 * DAY]))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    return PrefixDelegation(
        customer_block=BLOCK,
        delegated_length=delegated_length,
        rotating_count=rotating,
        static_count=static,
        rotation_interval=interval if rotating else None,
        root_seed=seed,
        asn=64500,
    )


times = st.floats(min_value=0, max_value=400 * DAY)


class TestDelegationProperties:
    @settings(max_examples=200, deadline=None)
    @given(delegations(), times, st.data())
    def test_locate_inverts_delegation(self, delegation, when, data):
        total = delegation.rotating_count + delegation.static_count
        if total == 0:
            return
        index = data.draw(st.integers(min_value=0, max_value=total - 1))
        if index < delegation.rotating_count:
            customer, rotating = index, True
        else:
            customer, rotating = index - delegation.rotating_count, False
        base = delegation.delegated_base(customer, rotating, when)
        assert BLOCK.contains(base)
        assert delegation.locate(base, when) == (customer, rotating)
        # Any address inside the delegated prefix locates identically.
        host_bits = 128 - delegation.delegated_length
        offset = data.draw(
            st.integers(min_value=0, max_value=(1 << host_bits) - 1)
        )
        assert delegation.locate(base | offset, when) == (customer, rotating)

    @settings(max_examples=100, deadline=None)
    @given(delegations(), times)
    def test_no_collisions_at_any_instant(self, delegation, when):
        bases = set()
        for index in range(delegation.rotating_count):
            bases.add(delegation.delegated_base(index, True, when))
        for index in range(delegation.static_count):
            bases.add(delegation.delegated_base(index, False, when))
        assert len(bases) == delegation.rotating_count + delegation.static_count

    @settings(max_examples=100, deadline=None)
    @given(delegations(), times)
    def test_static_customers_never_move(self, delegation, when):
        for index in range(min(4, delegation.static_count)):
            assert delegation.delegated_base(
                index, False, 0.0
            ) == delegation.delegated_base(index, False, when)

    @settings(max_examples=100, deadline=None)
    @given(delegations(), st.integers(min_value=0, max_value=1000))
    def test_rotation_epoch_stability(self, delegation, epoch):
        if delegation.rotating_count == 0:
            return
        interval = delegation.rotation_interval
        early = epoch * interval + 0.001 * interval
        late = (epoch + 1) * interval - 0.001 * interval
        for index in range(min(4, delegation.rotating_count)):
            assert delegation.delegated_base(
                index, True, early
            ) == delegation.delegated_base(index, True, late)
