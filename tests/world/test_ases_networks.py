"""Tests for repro.world.ases and repro.world.networks."""

import pytest

from repro.net.asn import ASCategory, ASRecord, ISPSubtype
from repro.net.prefixes import Prefix, parse_prefix
from repro.ntp.client import OperatingSystem
from repro.world.ases import ASProfile, PrefixDelegation
from repro.world.clock import DAY
from repro.world.devices import Device, DeviceType
from repro.world.networks import CustomerNetwork
from repro.world.strategies import LowByteStrategy, PrivacyExtensionsStrategy

BLOCK = parse_prefix("2a00::/40")


def make_delegation(rotating=4, static=4, interval=DAY, **overrides):
    kwargs = dict(
        customer_block=BLOCK,
        delegated_length=56,
        rotating_count=rotating,
        static_count=static,
        rotation_interval=interval,
        root_seed=1,
        asn=64500,
    )
    kwargs.update(overrides)
    return PrefixDelegation(**kwargs)


def make_profile(delegation=None, **overrides):
    record = ASRecord(
        asn=64500, name="TestNet", country="US",
        category=ASCategory.ISP, subtype=ISPSubtype.FIXED_LINE,
    )
    kwargs = dict(
        record=record,
        customer_block=BLOCK,
        delegation=delegation or make_delegation(),
        infra_prefix=parse_prefix("2b00::/48"),
    )
    kwargs.update(overrides)
    return ASProfile(**kwargs)


def make_device(device_id=1, strategy=None, **overrides):
    kwargs = dict(
        device_id=device_id,
        device_type=DeviceType.LAPTOP,
        os_family=OperatingSystem.LINUX_UBUNTU,
        strategy=strategy or LowByteStrategy(9),
        root_seed=1,
    )
    kwargs.update(overrides)
    return Device(**kwargs)


class TestPrefixDelegation:
    def test_static_customer_is_stable(self):
        delegation = make_delegation()
        a = delegation.delegated_base(2, False, 0.0)
        b = delegation.delegated_base(2, False, 100 * DAY)
        assert a == b

    def test_rotating_customer_changes_per_epoch(self):
        delegation = make_delegation()
        a = delegation.delegated_base(0, True, 0.0)
        b = delegation.delegated_base(0, True, DAY + 1)
        assert a != b

    def test_within_epoch_stable(self):
        delegation = make_delegation()
        a = delegation.delegated_base(0, True, 10.0)
        b = delegation.delegated_base(0, True, DAY - 10.0)
        assert a == b

    def test_all_prefixes_inside_block(self):
        delegation = make_delegation()
        for epoch in range(5):
            for index in range(4):
                base = delegation.delegated_base(index, True, epoch * DAY)
                assert BLOCK.contains(base)

    def test_no_collisions_within_epoch(self):
        delegation = make_delegation(rotating=8, static=8)
        when = 5 * DAY
        bases = [delegation.delegated_base(i, True, when) for i in range(8)]
        bases += [delegation.delegated_base(i, False, when) for i in range(8)]
        assert len(set(bases)) == 16

    def test_locate_inverts_rotating(self):
        delegation = make_delegation(rotating=8)
        for when in (0.0, 3 * DAY + 7, 100 * DAY):
            for index in range(8):
                base = delegation.delegated_base(index, True, when)
                assert delegation.locate(base + 12345, when) == (index, True)

    def test_locate_inverts_static(self):
        delegation = make_delegation(static=8)
        for index in range(8):
            base = delegation.delegated_base(index, False, 17.0)
            assert delegation.locate(base + 1, 99 * DAY) == (index, False)

    def test_locate_unallocated_slot(self):
        delegation = make_delegation(rotating=1, static=1)
        # The very top slot of the static half is unallocated.
        top = BLOCK.network | ((1 << 16) - 1) << 72
        assert delegation.locate(top, 0.0) is None

    def test_locate_outside_block_rejected(self):
        delegation = make_delegation()
        with pytest.raises(ValueError):
            delegation.locate(parse_prefix("3000::/40").network, 0.0)

    def test_delegated_prefix_object(self):
        delegation = make_delegation()
        prefix = delegation.delegated_prefix(0, False, 0.0)
        assert prefix.length == 56
        assert BLOCK.contains_prefix(prefix)

    def test_rejects_overfull(self):
        with pytest.raises(ValueError):
            make_delegation(rotating=1 << 16)
        with pytest.raises(ValueError):
            make_delegation(static=(1 << 15) + 1)

    def test_rejects_rotation_without_interval(self):
        with pytest.raises(ValueError):
            make_delegation(rotating=2, interval=None)

    def test_rejects_bad_lengths(self):
        with pytest.raises(ValueError):
            make_delegation(delegated_length=40)
        with pytest.raises(ValueError):
            make_delegation(delegated_length=65)

    def test_static_only_needs_no_interval(self):
        delegation = make_delegation(rotating=0, interval=None)
        assert delegation.locate(
            delegation.delegated_base(0, False, 0.0), 0.0
        ) == (0, False)

    def test_bijection_over_epochs(self):
        # Rotation must remain a bijection at every epoch.
        delegation = make_delegation(rotating=16)
        for epoch in range(10):
            when = epoch * DAY + 1
            slots = {
                delegation.delegated_base(i, True, when) for i in range(16)
            }
            assert len(slots) == 16


class TestASProfile:
    def test_owns(self):
        profile = make_profile()
        assert profile.owns(BLOCK.network | 5)
        assert profile.owns(parse_prefix("2b00::/48").network | 1)
        assert not profile.owns(parse_prefix("3000::/4").network | 1)

    def test_owns_without_infra(self):
        profile = make_profile(infra_prefix=None)
        assert not profile.owns(parse_prefix("2b00::/48").network | 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_profile(firewall_probability=1.5)
        with pytest.raises(ValueError):
            make_profile(infra_prefix=parse_prefix("2b00::/64"))

    def test_asn_country_shortcuts(self):
        profile = make_profile()
        assert profile.asn == 64500
        assert profile.country == "US"


class TestCustomerNetwork:
    def _network(self, rotating=False, firewalled=False):
        profile = make_profile()
        return CustomerNetwork(
            network_id=1, profile=profile, customer_index=0,
            rotating=rotating, firewalled=firewalled,
        )

    def test_attach_sets_home(self):
        network = self._network()
        device = make_device()
        network.attach(device)
        assert device.home_network_id == 1
        assert network.devices == [device]

    def test_attach_visitor_keeps_home(self):
        network = self._network()
        device = make_device()
        device.home_network_id = 99
        network.attach(device, home=False)
        assert device.home_network_id == 99

    def test_device_address_composition(self):
        network = self._network()
        device = make_device(subnet_index=3)
        network.attach(device)
        address = network.device_address(device, 0.0)
        base = network.delegated_base(0.0)
        assert address == base | (3 << 64) | 9

    def test_subnet_wraps_into_delegation(self):
        network = self._network()
        device = make_device(subnet_index=256)  # /56 has 256 subnets: 0-255
        network.attach(device)
        # 256 wraps to subnet 0 of the /56.
        assert network.prefix64_for(device, 0.0) == network.delegated_base(0.0)

    def test_holder_of_finds_device(self):
        network = self._network()
        device = make_device()
        network.attach(device)
        address = network.device_address(device, 5.0)
        assert network.holder_of(address, 5.0) is device

    def test_holder_of_misses_rotated_address(self):
        profile = make_profile()
        network = CustomerNetwork(1, profile, 0, rotating=True)
        strategy = PrivacyExtensionsStrategy(1, 42, rotation_interval=DAY)
        device = make_device(strategy=strategy)
        network.attach(device)
        address = network.device_address(device, 0.0)
        # Two days later both the prefix and the IID have moved on.
        assert network.holder_of(address, 2 * DAY) is None

    def test_present_devices_respects_mobility(self):
        from repro.world.mobility import StaticPlan

        network = self._network()
        device = make_device()
        network.attach(device)
        device.mobility_plan = StaticPlan(999)  # device is elsewhere
        assert list(network.present_devices(0.0)) == []
        assert network.holder_of(network.device_address(device, 0.0), 0.0) is None

    def test_repr(self):
        network = self._network()
        assert "AS64500" in repr(network)
