"""Tests for repro.world.strategies — IID assignment behaviours."""

import pytest

from repro.addr.entropy import normalized_iid_entropy
from repro.addr.eui64 import iid_to_mac, looks_like_eui64
from repro.addr.patterns import embedded_ipv4_candidates
from repro.world.clock import DAY, HOUR
from repro.world.strategies import (
    Dhcpv6SequentialStrategy,
    Eui64Strategy,
    IPv4EmbeddedStrategy,
    LowByteStrategy,
    LowTwoBytesStrategy,
    PrivacyExtensionsStrategy,
    RandomLow4Strategy,
    StableRandomStrategy,
    StrategyKind,
)

PREFIX_A = 0x20010DB8_00010000 << 64
PREFIX_B = 0x20010DB8_00020000 << 64


class TestLowByte:
    def test_fixed_iid(self):
        strategy = LowByteStrategy(7)
        assert strategy.iid_at(0.0, PREFIX_A) == 7
        assert strategy.iid_at(1e9, PREFIX_B) == 7

    def test_bounds(self):
        with pytest.raises(ValueError):
            LowByteStrategy(0)
        with pytest.raises(ValueError):
            LowByteStrategy(256)

    def test_flags(self):
        strategy = LowByteStrategy(1)
        assert not strategy.rotates_over_time
        assert not strategy.depends_on_prefix
        assert strategy.kind is StrategyKind.LOW_BYTE


class TestLowTwoBytes:
    def test_fixed_iid(self):
        assert LowTwoBytesStrategy(0x1234).iid_at(0.0, PREFIX_A) == 0x1234

    def test_bounds(self):
        with pytest.raises(ValueError):
            LowTwoBytesStrategy(0xFF)
        with pytest.raises(ValueError):
            LowTwoBytesStrategy(0x10000)


class TestDhcpv6:
    def test_sequential_pool(self):
        a = Dhcpv6SequentialStrategy(0)
        b = Dhcpv6SequentialStrategy(1)
        assert b.iid_at(0.0, PREFIX_A) - a.iid_at(0.0, PREFIX_A) == 1
        assert a.iid_at(0.0, PREFIX_A) == Dhcpv6SequentialStrategy.POOL_BASE

    def test_low_entropy(self):
        iid = Dhcpv6SequentialStrategy(42).iid_at(0.0, PREFIX_A)
        assert normalized_iid_entropy(iid) < 0.25

    def test_bounds(self):
        with pytest.raises(ValueError):
            Dhcpv6SequentialStrategy(-1)
        with pytest.raises(ValueError):
            Dhcpv6SequentialStrategy(1 << 24)


class TestEui64:
    def test_embeds_mac(self):
        mac = 0x001122334455
        strategy = Eui64Strategy(mac)
        iid = strategy.iid_at(0.0, PREFIX_A)
        assert looks_like_eui64(iid)
        assert iid_to_mac(iid) == mac

    def test_stable_everywhere(self):
        strategy = Eui64Strategy(0xAABBCCDDEEFF)
        assert strategy.iid_at(0.0, PREFIX_A) == strategy.iid_at(1e9, PREFIX_B)

    def test_rejects_bad_mac(self):
        with pytest.raises(ValueError):
            Eui64Strategy(1 << 48)


class TestPrivacyExtensions:
    def test_rotates_per_interval(self):
        strategy = PrivacyExtensionsStrategy(1, 10, rotation_interval=DAY)
        first = strategy.iid_at(0.0, PREFIX_A)
        same_epoch = strategy.iid_at(DAY - 1, PREFIX_A)
        next_epoch = strategy.iid_at(DAY + 1, PREFIX_A)
        assert first == same_epoch
        assert first != next_epoch

    def test_prefix_independent(self):
        strategy = PrivacyExtensionsStrategy(1, 10, rotation_interval=DAY)
        assert strategy.iid_at(0.0, PREFIX_A) == strategy.iid_at(0.0, PREFIX_B)

    def test_device_specific(self):
        a = PrivacyExtensionsStrategy(1, 10, DAY)
        b = PrivacyExtensionsStrategy(1, 11, DAY)
        assert a.iid_at(0.0, PREFIX_A) != b.iid_at(0.0, PREFIX_A)

    def test_high_entropy_typical(self):
        strategy = PrivacyExtensionsStrategy(1, 10, DAY)
        entropies = [
            normalized_iid_entropy(strategy.iid_at(day * DAY, PREFIX_A))
            for day in range(100)
        ]
        assert sum(e >= 0.75 for e in entropies) / len(entropies) > 0.6

    def test_flags(self):
        strategy = PrivacyExtensionsStrategy(1, 10, DAY)
        assert strategy.rotates_over_time
        assert not strategy.depends_on_prefix

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            PrivacyExtensionsStrategy(1, 10, 0.0)


class TestStableRandom:
    def test_stable_in_prefix(self):
        strategy = StableRandomStrategy(1, 10)
        assert strategy.iid_at(0.0, PREFIX_A) == strategy.iid_at(1e9, PREFIX_A)

    def test_changes_across_prefixes(self):
        strategy = StableRandomStrategy(1, 10)
        assert strategy.iid_at(0.0, PREFIX_A) != strategy.iid_at(0.0, PREFIX_B)
        assert strategy.depends_on_prefix


class TestRandomLow4:
    def test_only_low_bytes_set(self):
        strategy = RandomLow4Strategy(1, 10, DAY)
        for day in range(30):
            iid = strategy.iid_at(day * DAY, PREFIX_A)
            assert iid < (1 << 32)

    def test_rotates(self):
        strategy = RandomLow4Strategy(1, 10, DAY)
        assert strategy.iid_at(0.0, PREFIX_A) != strategy.iid_at(2 * DAY, PREFIX_A)

    def test_medium_entropy_mode(self):
        # The Jio-style pattern lands well below full-random entropy:
        # eight zero nibbles cap normalized entropy around 0.6.
        strategy = RandomLow4Strategy(1, 10, DAY)
        entropies = [
            normalized_iid_entropy(strategy.iid_at(day * DAY, PREFIX_A))
            for day in range(100)
        ]
        mean = sum(entropies) / len(entropies)
        assert 0.4 < mean < 0.65


class TestIPv4Embedded:
    def test_hex32(self):
        strategy = IPv4EmbeddedStrategy(0xC0000201, "hex32")
        iid = strategy.iid_at(0.0, PREFIX_A)
        assert embedded_ipv4_candidates(iid)["hex32"] == 0xC0000201

    def test_decimal_groups(self):
        strategy = IPv4EmbeddedStrategy(0xC0000201, "decimal_groups")
        iid = strategy.iid_at(0.0, PREFIX_A)
        assert embedded_ipv4_candidates(iid)["decimal_groups"] == 0xC0000201

    def test_rejects_bad_encoding(self):
        with pytest.raises(ValueError):
            IPv4EmbeddedStrategy(1, "nope")

    def test_rejects_bad_ipv4(self):
        with pytest.raises(ValueError):
            IPv4EmbeddedStrategy(1 << 32)

    def test_stable(self):
        strategy = IPv4EmbeddedStrategy(0x0A000001)
        assert strategy.iid_at(0.0, PREFIX_A) == strategy.iid_at(1e9, PREFIX_B)
