"""Tests for repro.world.population and repro.world.world (integration)."""

import pytest

from repro.addr.eui64 import extract_mac
from repro.net.asn import ISPSubtype
from repro.world import (
    CAMPAIGN_EPOCH,
    DAY,
    DeviceType,
    ResponderKind,
    StrategyKind,
    WorldConfig,
    build_world,
)

NOW = CAMPAIGN_EPOCH + 2 * 3600.0


def tiny_config(**overrides):
    defaults = dict(
        seed=11,
        n_fixed_ases=8,
        n_cellular_ases=4,
        n_hosting_ases=4,
        n_home_networks=60,
        n_cellular_subscribers=40,
        n_hosting_networks=8,
    )
    defaults.update(overrides)
    return WorldConfig(**defaults)


@pytest.fixture(scope="module")
def world():
    return build_world(tiny_config())


class TestBuildDeterminism:
    def test_same_seed_same_world(self):
        a = build_world(tiny_config())
        b = build_world(tiny_config())
        assert a.stats() == b.stats()
        time = NOW + 3 * DAY
        for device_id in list(a.devices)[:50]:
            assert a.device_address(
                a.devices[device_id], time
            ) == b.device_address(b.devices[device_id], time)

    def test_different_seed_differs(self):
        a = build_world(tiny_config(seed=1))
        b = build_world(tiny_config(seed=2))
        addresses_a = {
            a.device_address(d, NOW) for d in list(a.iter_devices())[:50]
        }
        addresses_b = {
            b.device_address(d, NOW) for d in list(b.iter_devices())[:50]
        }
        assert addresses_a != addresses_b


class TestInventory(object):
    def test_as_counts(self, world):
        config = world.config
        assert len(world.profiles) == (
            config.n_fixed_ases + config.n_cellular_ases + config.n_hosting_ases
        )

    def test_vantage_plan_honored(self, world):
        assert len(world.vantages) == 27
        countries = {vantage.country for vantage in world.vantages}
        assert len(countries) == 20

    def test_vantage_addresses_unique_and_routed(self, world):
        addresses = [vantage.address for vantage in world.vantages]
        assert len(set(addresses)) == len(addresses)
        for vantage in world.vantages:
            assert world.ipv6_origin_asn(vantage.address) == vantage.asn

    def test_cellular_ases_are_phone_providers(self, world):
        cellular = [
            profile for profile in world.profiles.values() if profile.cellular
        ]
        assert cellular
        for profile in cellular:
            assert profile.record.subtype is ISPSubtype.PHONE_PROVIDER

    def test_every_network_has_devices(self, world):
        for network in world.networks.values():
            assert network.devices, repr(network)

    def test_home_networks_have_cpe(self, world):
        hosting = {
            profile.asn
            for profile in world.profiles.values()
            if profile.record.subtype is ISPSubtype.HOSTING
        }
        for network in world.networks.values():
            if network.profile.cellular or network.asn in hosting:
                continue
            types = [device.device_type for device in network.devices]
            # Twin networks for movers hold a single non-CPE device.
            if DeviceType.CPE_ROUTER not in types:
                assert len(network.devices) == 1
            else:
                assert types.count(DeviceType.CPE_ROUTER) == 1

    def test_strategy_diversity(self, world):
        kinds = {
            device.strategy.kind for device in world.iter_devices()
        }
        assert StrategyKind.PRIVACY in kinds
        assert StrategyKind.EUI64 in kinds
        assert StrategyKind.LOW_BYTE in kinds

    def test_devices_have_macs(self, world):
        assert all(device.mac is not None for device in world.iter_devices())


class TestAddressing:
    def test_addresses_are_routed_to_home_as(self, world):
        for device in list(world.iter_devices())[:200]:
            network = world.device_network(device, NOW)
            address = world.device_address(device, NOW)
            assert world.ipv6_origin_asn(address) == network.asn

    def test_eui64_devices_expose_mac(self, world):
        eui64_devices = [
            device
            for device in world.iter_devices()
            if device.strategy.kind is StrategyKind.EUI64
        ]
        assert eui64_devices
        for device in eui64_devices[:50]:
            address = world.device_address(device, NOW)
            assert extract_mac(address) == device.mac

    def test_country_of_matches_as(self, world):
        for device in list(world.iter_devices())[:100]:
            network = world.device_network(device, NOW)
            address = world.device_address(device, NOW)
            assert world.country_of(address) == network.country

    def test_rotation_changes_address(self, world):
        rotating = [
            network
            for network in world.networks.values()
            if network.rotating and network.devices
        ]
        assert rotating
        network = rotating[0]
        device = network.devices[0]
        interval = network.profile.delegation.rotation_interval
        base_now = network.delegated_base(NOW)
        base_later = network.delegated_base(NOW + 2 * interval)
        assert base_now != base_later


class TestProbeOracle:
    def test_unrouted_address_silent(self, world):
        assert world.probe(0x20010DB8 << 96, NOW) is None

    def test_router_interfaces_respond(self, world):
        addresses = sorted(world.router_addresses)[:20]
        assert addresses
        for address in addresses:
            response = world.probe(address, NOW)
            assert response is not None
            assert response.kind is ResponderKind.ROUTER

    def test_infra_non_interface_silent(self, world):
        profile = next(
            p for p in world.profiles.values() if p.infra_prefix is not None
        )
        address = profile.infra_prefix.network | 0xDEAD
        if address not in world.router_addresses:
            assert world.probe(address, NOW) is None

    def test_aliased_as_answers_everything(self, world):
        aliased = [p for p in world.profiles.values() if p.aliased]
        assert aliased
        profile = aliased[0]
        for offset in (1, 12345, 0xDEADBEEF):
            response = world.probe(profile.customer_block.network | offset, NOW)
            assert response is not None
            assert response.kind is ResponderKind.ALIAS

    def test_live_unfirewalled_device_responds(self, world):
        for network in world.networks.values():
            if network.firewalled or network.profile.aliased:
                continue
            for device in network.present_devices(NOW):
                address = network.device_address(device, NOW)
                response = world.probe(address, NOW)
                assert response is not None
                assert response.device is device
                return
        pytest.skip("no unfirewalled populated network in tiny world")

    def test_firewalled_client_silent_but_cpe_responds(self, world):
        for network in world.networks.values():
            if not network.firewalled or network.profile.aliased:
                continue
            cpe = [d for d in network.devices
                   if d.device_type is DeviceType.CPE_ROUTER]
            clients = [d for d in network.present_devices(NOW)
                       if not d.device_type.is_infrastructure]
            if not (cpe and clients):
                continue
            client_addr = network.device_address(clients[0], NOW)
            assert world.probe(client_addr, NOW) is None
            cpe_addr = network.device_address(cpe[0], NOW)
            assert world.probe(cpe_addr, NOW) is not None
            return
        pytest.skip("no firewalled network with CPE and clients")

    def test_random_address_in_normal_as_silent(self, world):
        normal = next(
            p for p in world.profiles.values()
            if not p.aliased and not p.cellular
        )
        # An address in an unallocated corner of the customer block.
        address = normal.customer_block.last_address - 5
        located = normal.delegation.locate(address, NOW)
        if located is None:
            assert world.probe(address, NOW) is None

    def test_churned_address_goes_silent(self, world):
        # A privacy-extension device's old address should not respond a
        # couple of days later.
        for network in world.networks.values():
            if network.firewalled or network.profile.aliased:
                continue
            for device in network.devices:
                if device.strategy.kind is StrategyKind.PRIVACY and (
                    device.mobility_plan is None
                ):
                    old_address = world.device_address(device, NOW)
                    later = NOW + 3 * DAY
                    response = world.probe(old_address, later)
                    assert response is None or response.device is not device
                    return
        pytest.skip("no privacy device found")


class TestSpecialPopulations:
    def test_commuters_exist_and_alternate(self, world):
        commuters = [
            device
            for device in world.iter_devices()
            if device.mobility_plan is not None
            and len(device.mobility_plan.networks()) == 2
            and device.device_type is DeviceType.SMARTPHONE
        ]
        assert commuters
        device = commuters[0]
        networks = {
            device.current_network_id(NOW + block * 6 * 3600.0)
            for block in range(120)
        }
        assert networks == set(device.mobility_plan.networks())

    def test_commuter_cellular_is_other_as(self, world):
        for device in world.iter_devices():
            plan = device.mobility_plan
            if plan is None or device.device_type is not DeviceType.SMARTPHONE:
                continue
            home, cell = plan.networks()
            assert world.networks[home].asn != world.networks[cell].asn
            assert world.networks[cell].profile.cellular
            return
        pytest.skip("no commuter found")

    def test_reused_macs_span_devices(self, world):
        if not world.reused_macs:
            pytest.skip("tiny world produced no reused MACs")
        for mac in world.reused_macs:
            holders = [
                device
                for device in world.iter_devices()
                if device.mac == mac
            ]
            assert len(holders) >= 2

    def test_world_stats_keys(self, world):
        stats = world.stats()
        for key in ("ases", "networks", "devices", "pool_clients", "vantages"):
            assert stats[key] > 0

    def test_pool_clients_subset(self, world):
        clients = world.pool_client_devices()
        assert 0 < len(clients) < len(world.devices)
        assert all(device.uses_pool for device in clients)


class TestWorldRegistration:
    def test_duplicate_device_rejected(self, world):
        device = next(world.iter_devices())
        with pytest.raises(ValueError):
            world.add_device(device)

    def test_duplicate_slot_rejected(self, world):
        network = next(iter(world.networks.values()))
        with pytest.raises(ValueError):
            world.add_network(
                network.profile, network.customer_index, network.rotating,
                firewalled=False,
            )


class TestConfigValidation:
    def test_rejects_too_few_ases(self):
        with pytest.raises(ValueError):
            WorldConfig(n_fixed_ases=3)

    def test_rejects_bad_delegated_length(self):
        with pytest.raises(ValueError):
            WorldConfig(delegated_length=47)

    def test_rejects_rotating_fractions_over_one(self):
        with pytest.raises(ValueError):
            WorldConfig(slow_rotating_fraction=0.8, fast_rotating_fraction=0.5)
