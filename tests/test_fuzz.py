"""Failure injection and fuzzing across trust boundaries.

Everything that parses bytes off the wire or answers arbitrary-address
queries must be total: either a well-formed result or a clean
``ValueError`` — never a crash, never an amplification.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.addr import ipv6
from repro.ntp.dhcp import parse_fqdn, parse_ntp_option
from repro.ntp.packet import Mode, NTPPacket
from repro.ntp.server import StratumTwoServer
from repro.world import CAMPAIGN_EPOCH, WorldConfig, build_world

SERVER = StratumTwoServer(ipv6.parse("2001:db8::53"), "US")
CLIENT = ipv6.parse("2001:db8::c1")


class TestNTPServerFuzz:
    @given(st.binary(max_size=96))
    def test_never_crashes_on_garbage(self, data):
        SERVER.handle_datagram(data, CLIENT, 1000.0)

    @given(st.binary(min_size=48, max_size=48))
    def test_responds_only_to_client_mode(self, data):
        response = SERVER.handle_datagram(data, CLIENT, 1000.0)
        if response is not None:
            request = NTPPacket.parse(data)
            assert request.is_valid_request()

    @given(st.binary(min_size=48, max_size=48))
    def test_response_is_never_larger_than_request(self, data):
        # No amplification: a 48-byte query gets a 48-byte answer.
        response = SERVER.handle_datagram(data, CLIENT, 1000.0)
        if response is not None:
            assert len(response) <= len(data)

    @given(st.binary(min_size=48, max_size=48))
    def test_response_parses_and_echoes_origin(self, data):
        response = SERVER.handle_datagram(data, CLIENT, 1000.0)
        if response is not None:
            parsed = NTPPacket.parse(response)
            request = NTPPacket.parse(data)
            assert parsed.mode is Mode.SERVER
            assert parsed.origin_timestamp == request.transmit_timestamp


class TestDHCPv6Fuzz:
    @given(st.binary(max_size=128))
    def test_option_parser_total(self, data):
        try:
            suboptions = parse_ntp_option(data)
        except ValueError:
            return
        assert suboptions  # success implies at least one suboption

    @given(st.binary(max_size=64))
    def test_fqdn_parser_total(self, data):
        try:
            name = parse_fqdn(data)
        except (ValueError, UnicodeDecodeError):
            return
        assert name


class TestPacketParserFuzz:
    @given(st.binary(min_size=48, max_size=96))
    def test_ntp_parse_total(self, data):
        # Either a clean rejection (e.g. version 0 on the wire) or a
        # packet that re-serializes to the same 48 bytes.
        try:
            packet = NTPPacket.parse(data)
        except ValueError:
            return
        assert packet.pack() == data[:48]

    @given(st.binary(max_size=47))
    def test_short_datagrams_rejected(self, data):
        with pytest.raises(ValueError):
            NTPPacket.parse(data)


@pytest.fixture(scope="module")
def fuzz_world():
    return build_world(
        WorldConfig(
            seed=71,
            n_fixed_ases=6,
            n_cellular_ases=4,
            n_hosting_ases=4,
            n_home_networks=40,
            n_cellular_subscribers=20,
            n_hosting_networks=6,
        )
    )


class TestProbeOracleFuzz:
    @settings(suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(
        st.integers(min_value=0, max_value=(1 << 128) - 1),
        st.floats(min_value=0, max_value=CAMPAIGN_EPOCH + 1e8),
    )
    def test_oracle_total_and_routed_only(self, fuzz_world, address, when):
        response = fuzz_world.probe(address, when)
        if response is not None:
            assert fuzz_world.ipv6_origin_asn(address) == response.asn

    @settings(suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(st.integers(min_value=0, max_value=(1 << 128) - 1))
    def test_country_lookup_total(self, fuzz_world, address):
        country = fuzz_world.country_of(address)
        assert country is None or len(country) == 2
