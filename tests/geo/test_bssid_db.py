"""Tests for repro.geo.bssid_db."""

import pytest

from repro.addr.mac import with_nic
from repro.geo.bssid_db import BSSIDDatabase, GeoPoint

BERLIN = GeoPoint(52.5, 13.4, "DE")
PARIS = GeoPoint(48.9, 2.35, "FR")


class TestGeoPoint:
    def test_valid(self):
        assert BERLIN.country == "DE"

    def test_rejects_bad_latitude(self):
        with pytest.raises(ValueError):
            GeoPoint(91.0, 0.0, "DE")

    def test_rejects_bad_longitude(self):
        with pytest.raises(ValueError):
            GeoPoint(0.0, 181.0, "DE")

    def test_rejects_bad_country(self):
        with pytest.raises(ValueError):
            GeoPoint(0.0, 0.0, "Deutschland")

    def test_frozen(self):
        with pytest.raises(AttributeError):
            BERLIN.latitude = 0.0


class TestBSSIDDatabase:
    def test_add_lookup(self):
        db = BSSIDDatabase()
        bssid = with_nic(0x3810D5, 7)
        db.add(bssid, BERLIN)
        assert db.lookup(bssid) == BERLIN
        assert bssid in db
        assert len(db) == 1

    def test_lookup_missing(self):
        assert BSSIDDatabase().lookup(1) is None

    def test_readd_updates(self):
        db = BSSIDDatabase()
        bssid = with_nic(0x3810D5, 7)
        db.add(bssid, BERLIN)
        db.add(bssid, PARIS)
        assert db.lookup(bssid) == PARIS
        assert len(db) == 1
        assert db.bssids_in_oui(0x3810D5) == [bssid]

    def test_rejects_bad_bssid(self):
        with pytest.raises(ValueError):
            BSSIDDatabase().add(1 << 48, BERLIN)

    def test_by_oui_index(self):
        db = BSSIDDatabase()
        a = with_nic(0x3810D5, 1)
        b = with_nic(0x3810D5, 2)
        c = with_nic(0xF00220, 1)
        for bssid in (a, b, c):
            db.add(bssid, BERLIN)
        assert sorted(db.bssids_in_oui(0x3810D5)) == [a, b]
        assert db.bssids_in_oui(0xF00220) == [c]
        assert db.bssids_in_oui(0x123456) == []
        assert sorted(db.ouis()) == [0x3810D5, 0xF00220]

    def test_items(self):
        db = BSSIDDatabase()
        db.add(5, BERLIN)
        assert list(db.items()) == [(5, BERLIN)]
