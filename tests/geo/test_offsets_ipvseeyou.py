"""Tests for repro.geo.offsets and repro.geo.ipvseeyou."""

import random

import pytest

from repro.addr.eui64 import mac_to_address
from repro.addr.mac import apply_offset, with_nic
from repro.geo.bssid_db import BSSIDDatabase, GeoPoint
from repro.geo.ipvseeyou import geolocate_corpus
from repro.geo.offsets import infer_offsets

OUI_A = 0x3810D5  # "AVM"
OUI_B = 0xF00220  # unlisted
BERLIN = GeoPoint(52.5, 13.4, "DE")
DELHI = GeoPoint(28.6, 77.2, "IN")


def build_population(oui, count, offset, rng, db=None, point=BERLIN,
                     coverage=1.0):
    """Create ``count`` wired MACs whose BSSIDs are at ``offset``."""
    macs = []
    for _ in range(count):
        mac = with_nic(oui, rng.getrandbits(24))
        macs.append(mac)
        if db is not None and rng.random() < coverage:
            db.add(apply_offset(mac, offset), point)
    return macs


class TestInferOffsets:
    def test_recovers_true_offset(self):
        rng = random.Random(1)
        db = BSSIDDatabase()
        macs = build_population(OUI_A, 600, 2, rng, db)
        offsets = infer_offsets(macs, db.bssids_in_oui, min_pairs=500)
        assert OUI_A in offsets
        assert offsets[OUI_A].offset == 2

    def test_recovers_negative_offset(self):
        rng = random.Random(2)
        db = BSSIDDatabase()
        macs = build_population(OUI_A, 600, -3, rng, db)
        offsets = infer_offsets(macs, db.bssids_in_oui, min_pairs=500)
        assert offsets[OUI_A].offset == -3

    def test_survives_noise(self):
        rng = random.Random(3)
        db = BSSIDDatabase()
        macs = build_population(OUI_A, 600, 1, rng, db, coverage=0.7)
        # Unrelated APs in the same OUI.
        for _ in range(300):
            db.add(with_nic(OUI_A, rng.getrandbits(24)), BERLIN)
        offsets = infer_offsets(macs, db.bssids_in_oui, min_pairs=500)
        assert offsets[OUI_A].offset == 1

    def test_min_pairs_threshold(self):
        rng = random.Random(4)
        db = BSSIDDatabase()
        macs = build_population(OUI_A, 100, 1, rng, db)
        assert infer_offsets(macs, db.bssids_in_oui, min_pairs=500) == {}
        assert OUI_A in infer_offsets(macs, db.bssids_in_oui, min_pairs=50)

    def test_oui_without_bssids_skipped(self):
        rng = random.Random(5)
        db = BSSIDDatabase()
        macs = build_population(OUI_B, 600, 1, rng, db=None)
        assert infer_offsets(macs, db.bssids_in_oui, min_pairs=10) == {}

    def test_exhaustive_matches_nearest(self):
        rng = random.Random(6)
        db = BSSIDDatabase()
        macs = build_population(OUI_A, 120, 2, rng, db)
        nearest = infer_offsets(macs, db.bssids_in_oui, min_pairs=50,
                                mode="nearest")
        exhaustive = infer_offsets(macs, db.bssids_in_oui, min_pairs=50,
                                   mode="exhaustive")
        assert nearest[OUI_A].offset == exhaustive[OUI_A].offset == 2

    def test_zero_offset_supported(self):
        rng = random.Random(7)
        db = BSSIDDatabase()
        macs = build_population(OUI_A, 600, 0, rng, db)
        assert infer_offsets(macs, db.bssids_in_oui, min_pairs=500)[
            OUI_A
        ].offset == 0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            infer_offsets([], lambda oui: [], mode="bogus")
        with pytest.raises(ValueError):
            infer_offsets([], lambda oui: [], neighbors=0)

    def test_per_oui_independence(self):
        rng = random.Random(8)
        db = BSSIDDatabase()
        macs_a = build_population(OUI_A, 600, 1, rng, db)
        macs_b = build_population(OUI_B, 600, 4, rng, db, point=DELHI)
        offsets = infer_offsets(macs_a + macs_b, db.bssids_in_oui,
                                min_pairs=500)
        assert offsets[OUI_A].offset == 1
        assert offsets[OUI_B].offset == 4


class TestGeolocateCorpus:
    def _corpus(self, macs, prefix=0x20010DB8 << 96):
        return [mac_to_address(prefix, mac) for mac in macs]

    def test_end_to_end(self):
        rng = random.Random(9)
        db = BSSIDDatabase()
        macs = build_population(OUI_A, 600, 2, rng, db, coverage=0.8)
        report = geolocate_corpus(self._corpus(macs), db, min_pairs=400)
        assert report.eui64_addresses == 600
        assert report.unique_macs == 600
        # ~80% of BSSIDs are in the DB, so ~80% geolocate.
        assert 0.7 < report.located_count / 600 < 0.9
        assert report.country_distribution()["DE"] == report.located_count

    def test_non_eui64_addresses_skipped(self):
        rng = random.Random(10)
        db = BSSIDDatabase()
        corpus = [rng.getrandbits(128) for _ in range(100)]
        report = geolocate_corpus(corpus, db)
        assert report.eui64_addresses <= 1  # 2^-16 marker chance
        assert report.located_count == 0

    def test_top_countries(self):
        rng = random.Random(11)
        db = BSSIDDatabase()
        macs_de = build_population(OUI_A, 700, 1, rng, db, point=BERLIN)
        macs_in = build_population(OUI_B, 600, 1, rng, db, point=DELHI,
                                   coverage=0.3)
        report = geolocate_corpus(
            self._corpus(macs_de + macs_in), db, min_pairs=400
        )
        top = report.top_countries(2)
        assert top[0][0] == "DE"
        assert top[0][1] > 0.5

    def test_empty_corpus(self):
        report = geolocate_corpus([], BSSIDDatabase())
        assert report.eui64_addresses == 0
        assert report.top_countries() == []

    def test_duplicate_macs_deduplicated(self):
        rng = random.Random(12)
        db = BSSIDDatabase()
        macs = build_population(OUI_A, 600, 1, rng, db)
        corpus = self._corpus(macs) + self._corpus(macs[:100])
        report = geolocate_corpus(corpus, db, min_pairs=400)
        assert report.eui64_addresses == 700
        assert report.unique_macs == 600
