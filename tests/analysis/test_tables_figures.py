"""Tests for repro.analysis.tables and repro.analysis.figures."""

import pytest

from repro.analysis.figures import (
    render_ccdf_chart,
    render_cdf_chart,
    render_timeline,
)
from repro.analysis.tables import format_count, format_table


class TestFormatCount:
    def test_int_grouping(self):
        assert format_count(1234567) == "1,234,567"

    def test_float_precision(self):
        assert format_count(1234.5678, precision=2) == "1,234.57"

    def test_none_is_dash(self):
        assert format_count(None) == "-"

    def test_bool_passthrough(self):
        assert format_count(True) == "True"


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(
            ["Name", "Count"],
            [["alpha", 5], ["b", 12345]],
            title="Demo",
        )
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "Name" in lines[1] and "Count" in lines[1]
        assert "alpha" in lines[3]
        assert "12,345" in lines[4]

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["A", "B"], [["only-one"]])

    def test_no_title(self):
        text = format_table(["A"], [["x"]])
        assert text.splitlines()[0].startswith("A")


class TestCharts:
    def test_cdf_chart_structure(self):
        text = render_cdf_chart(
            {"alpha": [0.1, 0.2, 0.9], "beta": [0.5, 0.6]},
            x_label="entropy",
            title="Fig X",
        )
        assert "Fig X" in text
        assert "alpha" in text and "beta" in text
        assert "entropy" in text
        assert "CDF" in text

    def test_ccdf_chart(self):
        text = render_ccdf_chart({"a": [1.0, 2.0, 3.0]}, x_label="lifetime")
        assert "CCDF" in text

    def test_cdf_empty_series_rejected(self):
        with pytest.raises(ValueError):
            render_cdf_chart({"a": []}, x_label="x")

    def test_timeline(self):
        text = render_timeline(
            {"AS1": [0.0, 100.0], "AS2": [50.0]},
            start=0.0,
            end=100.0,
            width=20,
            title="Fig 7",
        )
        lines = text.splitlines()
        assert lines[0] == "Fig 7"
        assert lines[1].startswith("AS1 |")
        assert lines[1].count("x") == 2
        assert lines[2].count("x") == 1

    def test_timeline_out_of_range_events_dropped(self):
        text = render_timeline({"t": [500.0]}, start=0.0, end=100.0, width=10)
        assert "x" not in text.splitlines()[0]

    def test_timeline_empty_range_rejected(self):
        with pytest.raises(ValueError):
            render_timeline({"t": []}, start=10.0, end=10.0)
