"""Tests for repro.analysis.distributions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.distributions import ECDF

samples = st.lists(
    st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200
)


class TestECDF:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ECDF([])

    def test_basic_cdf(self):
        dist = ECDF([1.0, 2.0, 2.0, 4.0])
        assert dist.cdf(0.5) == 0.0
        assert dist.cdf(1.0) == 0.25
        assert dist.cdf(2.0) == 0.75
        assert dist.cdf(4.0) == 1.0
        assert dist.cdf(100.0) == 1.0

    def test_ccdf_complements(self):
        dist = ECDF([1.0, 2.0, 3.0])
        for x in (0.0, 1.5, 3.0):
            assert dist.cdf(x) + dist.ccdf(x) == pytest.approx(1.0)

    def test_fraction_at(self):
        dist = ECDF([0.0, 0.0, 1.0])
        assert dist.fraction_at(0.0) == pytest.approx(2 / 3)
        assert dist.fraction_at(5.0) == 0.0

    def test_quantiles(self):
        dist = ECDF([1.0, 2.0, 3.0, 4.0])
        assert dist.quantile(0.25) == 1.0
        assert dist.quantile(0.5) == 2.0
        assert dist.quantile(1.0) == 4.0
        assert dist.median == 2.0

    def test_quantile_validation(self):
        dist = ECDF([1.0])
        with pytest.raises(ValueError):
            dist.quantile(0.0)
        with pytest.raises(ValueError):
            dist.quantile(1.5)

    def test_stats(self):
        dist = ECDF([3.0, 1.0, 2.0])
        assert dist.min == 1.0
        assert dist.max == 3.0
        assert dist.mean == 2.0
        assert len(dist) == 3

    def test_sample_points(self):
        dist = ECDF([0.0, 1.0])
        points = dist.sample_points(3)
        assert points == [(0.0, 0.5), (0.5, 0.5), (1.0, 1.0)]

    def test_sample_points_degenerate(self):
        dist = ECDF([5.0, 5.0])
        points = dist.sample_points(4)
        assert len(points) == 4
        assert all(y == 1.0 for _, y in points)

    def test_sample_points_validation(self):
        with pytest.raises(ValueError):
            ECDF([1.0]).sample_points(1)

    def test_ccdf_points(self):
        dist = ECDF([0.0, 1.0])
        for (x1, y1), (x2, y2) in zip(
            dist.sample_points(5), dist.ccdf_points(5)
        ):
            assert x1 == x2
            assert y1 + y2 == pytest.approx(1.0)

    @given(samples)
    def test_cdf_monotone(self, values):
        dist = ECDF(values)
        points = dist.sample_points(20)
        ys = [y for _, y in points]
        assert ys == sorted(ys)

    @given(samples, st.floats(min_value=0.01, max_value=1.0))
    def test_quantile_cdf_consistency(self, values, q):
        dist = ECDF(values)
        value = dist.quantile(q)
        assert dist.cdf(value) >= q - 1e-12
