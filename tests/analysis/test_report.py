"""Tests for repro.analysis.report — the consolidated study report."""

import pytest

from repro.analysis.report import study_report
from repro.core import StudyConfig, run_study
from repro.world import CAMPAIGN_EPOCH, WorldConfig, build_world


@pytest.fixture(scope="module")
def reported():
    world = build_world(
        WorldConfig(
            seed=13,
            n_fixed_ases=10,
            n_cellular_ases=4,
            n_hosting_ases=4,
            n_home_networks=150,
            n_cellular_subscribers=60,
            n_hosting_networks=12,
        )
    )
    results = run_study(
        world, StudyConfig(start=CAMPAIGN_EPOCH, weeks=10, seed=13)
    )
    return world, results, study_report(world, results)


class TestStudyReport:
    def test_header_identifies_run(self, reported):
        world, results, text = reported
        assert f"seed {world.config.seed}" in text
        assert f"{len(results.ntp):,}" in text

    def test_all_sections_present(self, reported):
        _, _, text = reported
        for marker in (
            "Table 1",
            "size ratios",
            "phone-provider share",
            "top-5 countries",
            "median IID entropy",
            "lifetimes:",
            "EUI-64:",
            "top manufacturers",
            "geolocation attack",
        ):
            assert marker in text, marker

    def test_all_three_datasets_mentioned(self, reported):
        _, results, text = reported
        for corpus in results.corpora():
            assert corpus.name in text

    def test_deterministic(self, reported):
        world, results, text = reported
        assert study_report(world, results) == text

    def test_report_via_cli(self, tmp_path, capsys):
        from repro.cli import main

        output = tmp_path / "report.txt"
        code = main(
            [
                "report", "--seed", "13", "--weeks", "10",
                "--scale", "tiny", "--output", str(output),
            ]
        )
        assert code == 0
        assert "Study report" in output.read_text()
