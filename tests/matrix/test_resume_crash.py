"""Crash-recovery tests: SIGKILL the sweep coordinator mid-run.

The scenario the manifest machinery exists for: the whole matrix
process (coordinator plus its hung cell child) dies without warning,
and a later ``--resume`` must finish the sweep re-running only what
was incomplete, with completed-cell outputs byte-identical to an
uninterrupted sweep.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.matrix import (
    MATRIX_NAME,
    MatrixSpec,
    load_manifest,
    run_matrix,
)

REPO_ROOT = Path(__file__).resolve().parents[2]

MICRO = {
    "n_home_networks": 30,
    "n_cellular_subscribers": 20,
    "n_hosting_networks": 6,
}

SPEC_DOC = {
    "presets": ["tiny"],
    "overrides": [MICRO],
    "faults": [None, "flap=0.3,loss=0.05,seed=9"],
    "weeks": [1],
    "workers": [1],
    "seeds": [0],
}


def cli_env(**extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_CHAOS_TOKENS", None)
    env.pop("REPRO_CHAOS_SHARD", None)
    env.pop("REPRO_CHAOS_MODE", None)
    env.update(extra)
    return env


def run_cli(args, env, **popen_kwargs):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *args],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        **popen_kwargs,
    )


def read_manifest_doc(directory):
    try:
        return json.loads((directory / MATRIX_NAME).read_text())
    except (OSError, json.JSONDecodeError):
        return None


def wait_for_cell_status(directory, cell_id, status, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        doc = read_manifest_doc(directory)
        if doc is not None:
            record = doc["cells"].get(cell_id)
            if record is not None and record["status"] == status:
                return doc
        time.sleep(0.05)
    raise AssertionError(
        f"cell {cell_id} never reached status {status!r} "
        f"within {timeout}s; last manifest: {read_manifest_doc(directory)}"
    )


class TestSigkillResume:
    def test_resume_finishes_only_the_incomplete_cell(self, tmp_path):
        spec = MatrixSpec.from_json(SPEC_DOC)
        cells = spec.expand()
        ok_cell, hung_cell = cells[0], cells[1]

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(SPEC_DOC))
        sweep_dir = tmp_path / "sweep"

        # Cell index 1 hangs (far longer than the test will allow);
        # cell index 0 completes normally first because the sweep runs
        # with a single matrix worker.
        tokens = tmp_path / "tokens"
        tokens.mkdir()
        (tokens / "token-0").touch()
        chaos = cli_env(
            REPRO_CHAOS_TOKENS=str(tokens),
            REPRO_CHAOS_SHARD="1",
            REPRO_CHAOS_MODE="hang",
            REPRO_CHAOS_HANG_SECONDS="120",
        )
        proc = run_cli(
            [
                "matrix",
                str(spec_path),
                "--dir",
                str(sweep_dir),
                "--matrix-workers",
                "1",
                "--max-cell-retries",
                "0",
            ],
            chaos,
            start_new_session=True,
        )
        try:
            wait_for_cell_status(sweep_dir, ok_cell.cell_id, "ok")
            wait_for_cell_status(sweep_dir, hung_cell.cell_id, "running")
            # SIGKILL the whole process group: coordinator AND the
            # hung cell child die with no chance to clean up.
            os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
                proc.wait(timeout=30)

        crashed = read_manifest_doc(sweep_dir)
        assert crashed["cells"][ok_cell.cell_id]["status"] == "ok"
        assert crashed["cells"][hung_cell.cell_id]["status"] == "running"
        ok_corpus = sweep_dir / "cells" / ok_cell.cell_id / "corpus.bin"
        frozen_bytes = ok_corpus.read_bytes()

        # Resume with chaos disarmed: must finish the sweep re-running
        # only the cell the crash interrupted.
        resumed = run_cli(
            [
                "matrix",
                str(spec_path),
                "--dir",
                str(sweep_dir),
                "--resume",
            ],
            cli_env(),
        )
        stdout, stderr = resumed.communicate(timeout=120)
        assert resumed.returncode == 0, stderr.decode()

        doc = read_manifest_doc(sweep_dir)
        ok_record = doc["cells"][ok_cell.cell_id]
        hung_record = doc["cells"][hung_cell.cell_id]
        assert ok_record["status"] == "ok"
        assert ok_record["skipped_resume"] is True
        assert hung_record["status"] == "ok"
        assert not hung_record["skipped_resume"]
        # The completed cell was not re-run: its corpus bytes are
        # untouched since before the kill.
        assert ok_corpus.read_bytes() == frozen_bytes

        # And the whole sweep is byte-identical to one that was never
        # interrupted.
        reference = run_matrix(spec, tmp_path / "reference")
        assert reference.counts["ok"] == 2
        for cell in cells:
            assert (
                (sweep_dir / "cells" / cell.cell_id / "corpus.bin").read_bytes()
                == (
                    tmp_path / "reference" / "cells" / cell.cell_id / "corpus.bin"
                ).read_bytes()
            )
            assert (
                doc["cells"][cell.cell_id]["digest"]
                == reference.manifest.cells[cell.cell_id].digest
            )


class TestTornManifest:
    def test_torn_live_manifest_falls_back_a_generation(self, tmp_path):
        spec = MatrixSpec.from_json(SPEC_DOC)
        run_matrix(spec, tmp_path)
        live = tmp_path / MATRIX_NAME
        prior = tmp_path / f"{MATRIX_NAME}.1"
        assert prior.exists()  # every save rotates the old generation

        # Tear the live manifest mid-write (truncate to half).
        payload = live.read_bytes()
        live.write_bytes(payload[: len(payload) // 2])

        loaded = load_manifest(tmp_path)
        assert loaded is not None
        manifest, used_path, skipped = loaded
        assert used_path == prior
        assert [path for path, _ in skipped] == [live]
        assert manifest.spec_digest == spec.digest()

    def test_corrupt_crc_falls_back_a_generation(self, tmp_path):
        spec = MatrixSpec.from_json(SPEC_DOC)
        run_matrix(spec, tmp_path)
        live = tmp_path / MATRIX_NAME

        doc = json.loads(live.read_text())
        doc["spec_digest"] = "0" * 32  # valid JSON, wrong checksum
        live.write_text(json.dumps(doc))

        loaded = load_manifest(tmp_path)
        assert loaded is not None
        _, used_path, skipped = loaded
        assert used_path.name == f"{MATRIX_NAME}.1"
        assert skipped and "crc" in skipped[0][1].lower()

    def test_resume_after_torn_manifest_completes(self, tmp_path):
        spec = MatrixSpec.from_json(SPEC_DOC)
        first = run_matrix(spec, tmp_path)
        live = tmp_path / MATRIX_NAME
        payload = live.read_bytes()
        live.write_bytes(payload[: len(payload) // 2])

        again = run_matrix(spec, tmp_path, resume=True)
        assert again.counts["ok"] == 2
        # The prior generation predates the final save, so at least the
        # first cell is verified and skipped; anything it recorded as
        # still in flight re-runs to the same bytes.
        assert again.counts["skipped_resume"] >= 1
        for cell_id, record in again.manifest.cells.items():
            assert record.digest == first.manifest.cells[cell_id].digest

    def test_all_generations_corrupt_is_an_error(self, tmp_path):
        from repro.matrix import MatrixManifestError

        spec = MatrixSpec.from_json(SPEC_DOC)
        run_matrix(spec, tmp_path)
        (tmp_path / MATRIX_NAME).write_text("{torn")
        (tmp_path / f"{MATRIX_NAME}.1").write_text("also torn")
        with pytest.raises(MatrixManifestError):
            load_manifest(tmp_path)
