"""Tests for repro.matrix.spec — expansion and validate-before-run."""

import json

import pytest

from repro.core.study import CAIDA_LAST_WEEK
from repro.matrix import (
    CellSpec,
    MatrixSpec,
    expand_and_validate,
    validate_cell,
)


def cell(**kwargs):
    defaults = dict(
        index=0,
        preset="tiny",
        overrides=(),
        faults=None,
        weeks=1,
        workers=1,
        seed=0,
    )
    defaults.update(kwargs)
    return CellSpec(**defaults)


class TestExpansion:
    def test_cartesian_product_size_and_order(self):
        spec = MatrixSpec(
            presets=("tiny", "small"),
            faults=(None, "flap=0.2"),
            seeds=(0, 1, 2),
        )
        cells = spec.expand()
        assert len(cells) == 2 * 2 * 3
        assert [c.index for c in cells] == list(range(12))
        # Seeds vary fastest, presets slowest (fixed axis order).
        assert [c.seed for c in cells[:3]] == [0, 1, 2]
        assert all(c.preset == "tiny" for c in cells[:6])
        assert all(c.preset == "small" for c in cells[6:])

    def test_expansion_is_deterministic(self):
        spec = MatrixSpec(seeds=(0, 1), faults=(None, "flap=0.1"))
        first = [c.cell_id for c in spec.expand()]
        second = [c.cell_id for c in spec.expand()]
        assert first == second

    def test_cell_ids_distinguish_parameters(self):
        ids = {c.cell_id for c in MatrixSpec(seeds=(0, 1, 2)).expand()}
        assert len(ids) == 3

    def test_overrides_are_canonically_ordered(self):
        a = MatrixSpec(overrides=({"seed": 1, "n_home_networks": 5},))
        b = MatrixSpec(overrides=({"n_home_networks": 5, "seed": 1},))
        assert a.digest() == b.digest()

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="seeds"):
            MatrixSpec(seeds=())


class TestJson:
    def test_round_trip_preserves_digest(self):
        spec = MatrixSpec(
            presets=("tiny",),
            overrides=({"n_home_networks": 30},),
            faults=(None, "flap=0.2,seed=9"),
            weeks=(1, 2),
            seeds=(0, 1),
        )
        doc = json.loads(json.dumps(spec.to_json()))
        assert MatrixSpec.from_json(doc).digest() == spec.digest()

    def test_scalars_are_wrapped_to_axes(self):
        spec = MatrixSpec.from_json(
            {"presets": "tiny", "weeks": 2, "seeds": 5}
        )
        assert spec.presets == ("tiny",)
        assert spec.weeks == (2,)
        assert spec.seeds == (5,)

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="bogus"):
            MatrixSpec.from_json({"presets": ["tiny"], "bogus": [1]})

    def test_non_object_spec_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            MatrixSpec.from_json(["tiny"])

    def test_from_file_rejects_bad_json(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            MatrixSpec.from_file(path)

    def test_cell_spec_round_trips(self):
        original = cell(
            index=3,
            overrides=(("n_home_networks", 30),),
            faults="flap=0.2",
            weeks=2,
            seed=7,
        )
        clone = CellSpec.from_json(
            json.loads(json.dumps(original.to_json()))
        )
        assert clone == original
        assert clone.cell_id == original.cell_id


class TestValidation:
    def test_feasible_cell_passes(self):
        assert validate_cell(cell()) == []

    def test_unknown_preset(self):
        reasons = validate_cell(cell(preset="galactic"))
        assert any("galactic" in reason for reason in reasons)

    def test_zero_weeks(self):
        assert any(
            "weeks" in reason for reason in validate_cell(cell(weeks=0))
        )

    def test_study_pipeline_needs_caida_span(self):
        short = cell(pipeline="study", weeks=CAIDA_LAST_WEEK - 1)
        assert any(
            "study" in reason for reason in validate_cell(short)
        )
        long_enough = cell(pipeline="study", weeks=CAIDA_LAST_WEEK)
        assert validate_cell(long_enough) == []

    def test_unknown_pipeline(self):
        assert any(
            "pipeline" in reason
            for reason in validate_cell(cell(pipeline="dance"))
        )

    def test_zero_workers(self):
        assert any(
            "workers" in reason
            for reason in validate_cell(cell(workers=0))
        )

    def test_unknown_override_field(self):
        bad = cell(overrides=(("warp_factor", 9),))
        assert any(
            "warp_factor" in reason for reason in validate_cell(bad)
        )

    def test_unbuildable_world_config(self):
        # Too few fixed ASes: WorldConfig's own validation must surface
        # as a rejection reason, not an exception.
        bad = cell(overrides=(("n_fixed_ases", 1),))
        reasons = validate_cell(bad)
        assert any("world config rejected" in reason for reason in reasons)

    @pytest.mark.parametrize(
        "spec", ["flap=2.0", "bogus=1", "flap=0.2,flap=0.3"]
    )
    def test_bad_fault_spec(self, spec):
        reasons = validate_cell(cell(faults=spec))
        assert any("fault spec" in reason for reason in reasons)

    def test_all_reasons_collected(self):
        bad = cell(preset="galactic", weeks=0, faults="flap=2.0")
        assert len(validate_cell(bad)) >= 3


class TestExpandAndValidate:
    def test_partition(self):
        spec = MatrixSpec(
            presets=("tiny", "galactic"), faults=(None, "flap=2.0")
        )
        runnable, rejected = expand_and_validate(spec)
        assert len(runnable) == 1
        assert len(rejected) == 3
        assert runnable[0].preset == "tiny"
        assert runnable[0].faults is None
        for rejection in rejected:
            assert rejection.reasons
            assert rejection.params

    def test_rejection_indices_match_expansion(self):
        spec = MatrixSpec(presets=("galactic",), seeds=(0, 1))
        _, rejected = expand_and_validate(spec)
        assert [r.index for r in rejected] == [0, 1]
