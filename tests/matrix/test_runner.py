"""Tests for repro.matrix.runner — the fault-tolerant sweep scheduler.

Every cell runs in its own process, so chaos here is injected through
the ``REPRO_CHAOS_*`` environment protocol keyed on the **cell index**
(the matrix analogue of a shard index).  The micro world overrides keep
each cell around 50ms so even the retry tests stay fast.
"""

import json

import pytest

from repro.matrix import MATRIX_NAME, MatrixSpec, execute_cell, run_matrix

#: Smallest world that still builds: shrink only the populations and
#: keep the preset's AS counts (vantage placement needs hosting ASes).
MICRO = {
    "n_home_networks": 30,
    "n_cellular_subscribers": 20,
    "n_hosting_networks": 6,
}

FAULTY = "flap=0.3,loss=0.05,seed=9"


def micro_spec(**axes):
    defaults = dict(
        presets=("tiny",),
        overrides=(MICRO,),
        faults=(None, FAULTY),
        weeks=(1,),
        workers=(1,),
        seeds=(0,),
    )
    defaults.update(axes)
    return MatrixSpec(**defaults)


@pytest.fixture()
def cell_chaos(tmp_path, monkeypatch):
    """Arm the chaos hooks against a single matrix cell index."""
    tokens = tmp_path / "chaos-tokens"
    tokens.mkdir()
    monkeypatch.setenv("REPRO_CHAOS_TOKENS", str(tokens))
    monkeypatch.delenv("REPRO_CHAOS_SHARD", raising=False)

    def arm(count, cell_index, mode):
        monkeypatch.setenv("REPRO_CHAOS_MODE", mode)
        monkeypatch.setenv("REPRO_CHAOS_SHARD", str(cell_index))
        for index in range(count):
            (tokens / f"token-{index}").touch()
        return tokens

    return arm


class TestHappyPath:
    def test_sweep_completes_and_matches_direct_execution(self, tmp_path):
        spec = micro_spec()
        result = run_matrix(spec, tmp_path / "sweep")
        assert result.complete
        assert result.counts["ok"] == 2
        assert result.failures == []
        assert (
            result.metrics.counter_value("repro_matrix_cells_ok_total")
            == 2
        )
        # Cell outputs are bit-identical to running the same cell
        # directly in-process: the harness adds no nondeterminism.
        for cell in spec.expand():
            reference_dir = tmp_path / "direct" / cell.cell_id
            execute_cell(cell, reference_dir)
            swept = tmp_path / "sweep" / "cells" / cell.cell_id
            assert (
                (swept / "corpus.bin").read_bytes()
                == (reference_dir / "corpus.bin").read_bytes()
            )
            record = result.manifest.cells[cell.cell_id]
            assert record.status == "ok"
            assert record.attempts == 1
            assert record.records > 0
            assert record.digest

    def test_manifest_persisted_and_loadable(self, tmp_path):
        from repro.matrix import load_manifest

        run_matrix(micro_spec(faults=(None,)), tmp_path)
        loaded = load_manifest(tmp_path)
        assert loaded is not None
        manifest, used_path, skipped = loaded
        assert used_path.name == MATRIX_NAME
        assert skipped == []
        assert manifest.complete
        assert manifest.counts()["ok"] == 1

    def test_matrix_workers_run_cells_concurrently(self, tmp_path):
        result = run_matrix(
            micro_spec(seeds=(0, 1)), tmp_path, matrix_workers=2
        )
        assert result.counts["ok"] == 4
        assert result.complete


class TestValidationGate:
    def test_infeasible_cells_rejected_before_any_compute(self, tmp_path):
        spec = MatrixSpec(presets=("galactic",), seeds=(0, 1))
        result = run_matrix(spec, tmp_path)
        assert result.counts["rejected"] == 2
        assert result.counts["ok"] == 0
        # No cell directory was ever created: rejection precedes compute.
        assert not (tmp_path / "cells").exists()
        assert (
            result.metrics.counter_value(
                "repro_matrix_cells_rejected_total"
            )
            == 2
        )
        for record in result.manifest.cells.values():
            assert record.status == "rejected"
            assert record.reasons

    def test_mixed_sweep_runs_the_feasible_cells(self, tmp_path):
        spec = micro_spec(faults=(None, "flap=2.0"))
        result = run_matrix(spec, tmp_path)
        assert result.counts["ok"] == 1
        assert result.counts["rejected"] == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"matrix_workers": 0},
            {"cell_timeout": 0.0},
            {"max_cell_retries": -1},
            {"retry_backoff": -0.5},
            {"retry_backoff_cap": 0.0},
        ],
    )
    def test_bad_parameters_rejected(self, tmp_path, kwargs):
        with pytest.raises(ValueError):
            run_matrix(micro_spec(), tmp_path, **kwargs)


class TestResume:
    def test_refuses_rerun_without_resume(self, tmp_path):
        run_matrix(micro_spec(faults=(None,)), tmp_path)
        with pytest.raises(ValueError, match="resume"):
            run_matrix(micro_spec(faults=(None,)), tmp_path)

    def test_resume_skips_verified_cells(self, tmp_path):
        spec = micro_spec()
        first = run_matrix(spec, tmp_path)
        digests = {
            cell_id: record.digest
            for cell_id, record in first.manifest.cells.items()
        }
        again = run_matrix(spec, tmp_path, resume=True)
        assert again.counts["ok"] == 2
        assert again.counts["skipped_resume"] == 2
        assert (
            again.metrics.counter_value(
                "repro_matrix_cells_skipped_resume_total"
            )
            == 2
        )
        for cell_id, record in again.manifest.cells.items():
            assert record.skipped_resume
            assert record.digest == digests[cell_id]

    def test_resume_reruns_cell_with_tampered_corpus(self, tmp_path):
        spec = micro_spec()
        first = run_matrix(spec, tmp_path)
        victim = sorted(first.manifest.cells)[0]
        corpus = tmp_path / "cells" / victim / "corpus.bin"
        corpus.write_bytes(b"corrupted")
        again = run_matrix(spec, tmp_path, resume=True)
        assert again.counts["ok"] == 2
        assert again.counts["skipped_resume"] == 1
        assert not again.manifest.cells[victim].skipped_resume
        # The re-run restored the recorded digest.
        assert (
            again.manifest.cells[victim].digest
            == first.manifest.cells[victim].digest
        )

    def test_resume_rejects_different_spec(self, tmp_path):
        run_matrix(micro_spec(faults=(None,)), tmp_path)
        with pytest.raises(ValueError, match="different matrix spec"):
            run_matrix(
                micro_spec(faults=(None,), seeds=(99,)),
                tmp_path,
                resume=True,
            )

    def test_resume_into_empty_directory_starts_fresh(self, tmp_path):
        result = run_matrix(
            micro_spec(faults=(None,)), tmp_path, resume=True
        )
        assert result.counts["ok"] == 1


class TestFailureHandling:
    def test_crashed_cell_is_retried_to_success(
        self, tmp_path, cell_chaos
    ):
        cell_chaos(1, cell_index=0, mode="kill")
        result = run_matrix(
            micro_spec(),
            tmp_path / "sweep",
            max_cell_retries=1,
            retry_backoff=0.0,
        )
        assert result.complete
        assert result.counts["ok"] == 2
        assert [f.action for f in result.failures] == ["retried"]
        assert result.failures[0].kind == "exception"
        assert (
            result.metrics.counter_value(
                "repro_matrix_cell_retries_total"
            )
            == 1
        )

    def test_terminal_failure_does_not_abort_the_sweep(
        self, tmp_path, cell_chaos
    ):
        cell_chaos(1, cell_index=0, mode="raise")
        result = run_matrix(
            micro_spec(),
            tmp_path / "sweep",
            max_cell_retries=0,
            retry_backoff=0.0,
        )
        # "complete" means every cell reached a terminal state —
        # a terminal failure still counts as a finished sweep.
        assert result.complete
        assert result.counts["failed"] == 1
        assert result.counts["ok"] == 1
        assert (
            result.metrics.counter_value(
                "repro_matrix_cells_failed_total"
            )
            == 1
        )
        [failure] = result.failures
        assert failure.action == "failed"
        assert failure.kind == "exception"
        # The child's traceback surfaced into the coordinator's record.
        assert "ChaosInjected" in failure.error
        failed = [
            record
            for record in result.manifest.cells.values()
            if record.status == "failed"
        ]
        assert len(failed) == 1
        assert "ChaosInjected" in failed[0].error

    def test_hung_cell_is_killed_at_its_deadline(
        self, tmp_path, cell_chaos, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CHAOS_HANG_SECONDS", "60")
        cell_chaos(1, cell_index=0, mode="hang")
        result = run_matrix(
            micro_spec(),
            tmp_path / "sweep",
            cell_timeout=1.0,
            max_cell_retries=0,
            retry_backoff=0.0,
        )
        assert result.counts["timeout"] == 1
        assert result.counts["ok"] == 1
        assert (
            result.metrics.counter_value(
                "repro_matrix_cells_timeout_total"
            )
            == 1
        )
        [failure] = result.failures
        assert failure.kind == "timeout"
        assert "deadline" in failure.error
        timed_out = [
            record
            for record in result.manifest.cells.values()
            if record.status == "timeout"
        ]
        assert len(timed_out) == 1

    def test_every_terminal_state_lands_in_manifest_and_metrics(
        self, tmp_path, cell_chaos
    ):
        # One rejected, one chaos-failed, one ok — all in a single sweep,
        # each visible in both MATRIX.json and the counters.
        cell_chaos(1, cell_index=0, mode="raise")
        spec = micro_spec(faults=(None, FAULTY, "flap=9.9"))
        result = run_matrix(
            spec,
            tmp_path / "sweep",
            max_cell_retries=0,
            retry_backoff=0.0,
        )
        assert result.counts["rejected"] == 1
        assert result.counts["failed"] == 1
        assert result.counts["ok"] == 1
        doc = json.loads(
            (tmp_path / "sweep" / MATRIX_NAME).read_text()
        )
        statuses = sorted(
            record["status"] for record in doc["cells"].values()
        )
        assert statuses == ["failed", "ok", "rejected"]
        for counter, expected in [
            ("repro_matrix_cells_ok_total", 1),
            ("repro_matrix_cells_failed_total", 1),
            ("repro_matrix_cells_rejected_total", 1),
            ("repro_matrix_cells_timeout_total", 0),
            ("repro_matrix_cells_skipped_resume_total", 0),
        ]:
            assert result.metrics.counter_value(counter) == expected
