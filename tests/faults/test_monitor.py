"""Tests for repro.faults.monitor — the pool score model."""

from repro.faults import FaultPlan, availability_timeline, incident_windows
from repro.faults.monitor import AvailabilityTimeline
from repro.world.clock import DAY, WEEK

START = 1_000_000.0
SPAN = 4 * WEEK
ADDRESS = 0x2001_0DB8_0000_0000_0000_0000_0000_0001

FLAPPY = FaultPlan(seed=11, vantage_flap_rate=0.4, outage_duration=7200.0)


class TestAvailabilityTimeline:
    def test_single_window_is_always_available(self):
        timeline = AvailabilityTimeline(
            0.0, 100.0, ((0.0, 100.0),)
        )
        assert timeline.fraction == 1.0
        assert timeline.ejections == 0
        assert timeline.available(0.0)
        assert timeline.available(99.9)

    def test_gap_counts_as_ejection(self):
        timeline = AvailabilityTimeline(
            0.0, 100.0, ((0.0, 40.0), (60.0, 100.0))
        )
        assert timeline.ejections == 1
        assert timeline.fraction == 0.8
        assert timeline.available(39.9)
        assert not timeline.available(50.0)
        assert timeline.available(60.0)

    def test_leading_and_trailing_gaps(self):
        timeline = AvailabilityTimeline(0.0, 100.0, ((20.0, 80.0),))
        assert timeline.ejections == 2
        assert not timeline.available(10.0)
        assert not timeline.available(90.0)

    def test_empty_windows_dropped(self):
        timeline = AvailabilityTimeline(
            0.0, 100.0, ((10.0, 10.0), (20.0, 30.0))
        )
        assert timeline.windows == ((20.0, 30.0),)


class TestIncidentWindows:
    def test_deterministic(self):
        first = incident_windows(FLAPPY, ADDRESS, START, START + SPAN)
        second = incident_windows(FLAPPY, ADDRESS, START, START + SPAN)
        assert first == second
        assert first  # 40%/day over 4 weeks: incidents all but certain

    def test_zero_flap_rate_has_no_incidents(self):
        plan = FaultPlan(seed=11, packet_loss=0.5)
        assert incident_windows(plan, ADDRESS, START, START + SPAN) == []

    def test_windows_sorted_disjoint_and_bounded(self):
        windows = incident_windows(FLAPPY, ADDRESS, START, START + SPAN)
        cursor = START
        for begin, finish in windows:
            assert cursor <= begin < finish <= START + SPAN
            cursor = finish

    def test_independent_per_vantage(self):
        a = incident_windows(FLAPPY, ADDRESS, START, START + SPAN)
        b = incident_windows(FLAPPY, ADDRESS + 1, START, START + SPAN)
        assert a != b

    def test_independent_per_seed(self):
        other = FaultPlan(
            seed=12, vantage_flap_rate=0.4, outage_duration=7200.0
        )
        assert incident_windows(
            FLAPPY, ADDRESS, START, START + SPAN
        ) != incident_windows(other, ADDRESS, START, START + SPAN)


class TestScoreModel:
    def test_no_incidents_means_full_availability(self):
        plan = FaultPlan(seed=11)
        timeline = availability_timeline(plan, ADDRESS, START, START + SPAN)
        assert timeline.fraction == 1.0
        assert timeline.ejections == 0

    def test_outage_ejects_and_rejoins(self):
        # High flap rate over a long span: some outage must cross the
        # score threshold, and recovery must bring the vantage back.
        timeline = availability_timeline(
            FLAPPY, ADDRESS, START, START + 12 * WEEK
        )
        assert timeline.ejections > 0
        assert 0.0 < timeline.fraction < 1.0

    def test_recovery_lags_incident_end(self):
        # The -5/+1 asymmetry: after the incident ends the vantage needs
        # many reachable samples to re-earn the join threshold, so the
        # out-of-rotation gap extends past the unreachability window.
        plan = FaultPlan(seed=2, vantage_flap_rate=1.0, outage_duration=4 * 3600.0)
        timeline = availability_timeline(plan, ADDRESS, START, START + 2 * DAY)
        incidents = incident_windows(plan, ADDRESS, START, START + 2 * DAY)
        assert timeline.ejections > 0
        first_gap_end = None
        cursor = timeline.start
        for window_start, window_end in timeline.windows:
            if window_start > cursor:
                first_gap_end = window_start
                break
            cursor = window_end
        if first_gap_end is not None:
            # Rejoin strictly after the first incident ended.
            assert first_gap_end > incidents[0][1]

    def test_deterministic_across_calls(self):
        a = availability_timeline(FLAPPY, ADDRESS, START, START + SPAN)
        b = availability_timeline(FLAPPY, ADDRESS, START, START + SPAN)
        assert a.windows == b.windows

    def test_fast_forward_matches_dense_sampling(self):
        # The O(incidents) fast path must agree with brute-force
        # sampling of the same score recurrence at every monitor tick.
        plan = FaultPlan(
            seed=5, vantage_flap_rate=0.5, outage_duration=3 * 3600.0
        )
        end = START + WEEK
        timeline = availability_timeline(plan, ADDRESS, START, end)
        incidents = incident_windows(plan, ADDRESS, START, end)

        def unreachable(when):
            return any(b <= when < f for b, f in incidents)

        score, in_rotation = plan.score_cap, True
        t = START
        while t + plan.monitor_interval < end:
            if unreachable(t):
                score = max(score - plan.unreach_penalty, -plan.score_cap)
            else:
                score = min(score + plan.reach_gain, plan.score_cap)
            in_rotation = score >= plan.join_threshold
            assert timeline.available(t + plan.monitor_interval / 2) == (
                in_rotation
            ), f"divergence at tick {t}"
            t += plan.monitor_interval
