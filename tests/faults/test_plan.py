"""Tests for repro.faults.plan — the frozen fault schedule."""

import pickle

import pytest

from repro.faults import FaultPlan


class TestValidation:
    def test_defaults_are_zero(self):
        plan = FaultPlan()
        assert plan.is_zero
        assert FaultPlan.none().is_zero

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"vantage_flap_rate": -0.1},
            {"vantage_flap_rate": 1.5},
            {"packet_loss": 2.0},
            {"corruption_rate": -1.0},
            {"outage_duration": 0.0},
            {"monitor_interval": -5.0},
            {"reach_gain": 0.0},
            {"unreach_penalty": -1.0},
            {"join_threshold": 30.0},  # above the score cap
            {"country_loss": (("brazil", 0.1),)},
            {"country_loss": (("BR", 7.0),)},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)

    def test_country_loss_canonical_order(self):
        a = FaultPlan(country_loss=(("US", 0.1), ("BR", 0.2)))
        b = FaultPlan(country_loss=(("BR", 0.2), ("US", 0.1)))
        assert a == b
        assert a.country_loss == (("BR", 0.2), ("US", 0.1))

    def test_nonzero_when_any_rate_set(self):
        assert not FaultPlan(vantage_flap_rate=0.1).is_zero
        assert not FaultPlan(packet_loss=0.1).is_zero
        assert not FaultPlan(corruption_rate=0.1).is_zero
        assert not FaultPlan(country_loss=(("BR", 0.1),)).is_zero
        # All-zero overrides still count as a zero plan.
        assert FaultPlan(country_loss=(("BR", 0.0),)).is_zero

    def test_loss_for(self):
        plan = FaultPlan(packet_loss=0.05, country_loss=(("BR", 0.3),))
        assert plan.loss_for("BR") == 0.3
        assert plan.loss_for("US") == 0.05

    def test_picklable_and_hashable(self):
        plan = FaultPlan(
            seed=9, vantage_flap_rate=0.2, country_loss=(("BR", 0.3),)
        )
        assert pickle.loads(pickle.dumps(plan)) == plan
        assert hash(plan) == hash(pickle.loads(pickle.dumps(plan)))


class TestSpec:
    def test_parse_full_spec(self):
        plan = FaultPlan.parse(
            "flap=0.2,outage=7200,loss=0.05,loss.br=0.3,"
            "corrupt=0.01,seed=9,monitor=600"
        )
        assert plan.vantage_flap_rate == 0.2
        assert plan.outage_duration == 7200.0
        assert plan.packet_loss == 0.05
        assert plan.country_loss == (("BR", 0.3),)
        assert plan.corruption_rate == 0.01
        assert plan.seed == 9
        assert plan.monitor_interval == 600.0

    @pytest.mark.parametrize("spec", [None, "", "   ", ","])
    def test_empty_spec_is_zero_plan(self, spec):
        assert FaultPlan.parse(spec) == FaultPlan.none()

    @pytest.mark.parametrize(
        "spec",
        ["flap", "bogus=1", "flap=notanumber", "loss=2.0"],
    )
    def test_bad_specs_raise_value_error(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.parse(spec)

    def test_duplicate_key_rejected_naming_the_key(self):
        with pytest.raises(ValueError, match=r"duplicate.*'flap'.*item 3"):
            FaultPlan.parse("flap=0.2,loss=0.05,flap=0.3")

    def test_duplicate_country_override_rejected(self):
        # Country keys are canonicalized before the duplicate check, so
        # differing case cannot smuggle in a second BR override.
        with pytest.raises(ValueError, match=r"duplicate.*'loss\.BR'"):
            FaultPlan.parse("loss.br=0.1,loss.BR=0.2")

    def test_base_and_country_loss_are_distinct_keys(self):
        plan = FaultPlan.parse("loss=0.05,loss.BR=0.3")
        assert plan.packet_loss == 0.05
        assert plan.country_loss == (("BR", 0.3),)

    def test_malformed_value_error_names_token_and_position(self):
        with pytest.raises(
            ValueError, match=r"'flap' at item 2: 'notanumber'"
        ):
            FaultPlan.parse("seed=3,flap=notanumber")

    def test_spec_round_trips(self):
        plan = FaultPlan(
            seed=3,
            vantage_flap_rate=0.25,
            outage_duration=1800.0,
            packet_loss=0.1,
            country_loss=(("BR", 0.3), ("US", 0.05)),
            corruption_rate=0.02,
        )
        assert FaultPlan.parse(plan.spec()) == plan
        assert FaultPlan.parse(FaultPlan.none().spec()) == FaultPlan.none()
