"""Tests for repro.faults.injector and the chaos environment hooks."""

from dataclasses import dataclass

import pytest

from repro.faults import ChaosInjected, FaultInjector, FaultPlan, maybe_fail_shard
from repro.ntp.packet import PACKET_LENGTH
from repro.world.clock import WEEK

START = 1_000_000.0
END = START + 8 * WEEK


@dataclass(frozen=True)
class FakeVantage:
    address: int
    country: str = "US"


VANTAGES = [FakeVantage(0x2001_0DB8 << 96 | i) for i in range(6)]


def make_injector(**kwargs):
    plan = FaultPlan(seed=13, **kwargs)
    return FaultInjector(plan, VANTAGES, START, END)


class TestRotation:
    def test_zero_plan_keeps_everything_in_rotation(self):
        injector = make_injector()
        for vantage in VANTAGES:
            assert injector.in_rotation(vantage.address, START)
            assert injector.in_rotation(vantage.address, END - 1)

    def test_unknown_vantage_defaults_to_available(self):
        assert make_injector().in_rotation(0xDEAD, START)

    def test_flapping_ejects_some_vantage(self):
        injector = make_injector(vantage_flap_rate=0.5, outage_duration=14400.0)
        timelines = injector.availability()
        assert len(timelines) == len(VANTAGES)
        assert any(t.ejections > 0 for t in timelines.values())
        # The injector's per-instant answer agrees with the timelines.
        for vantage in VANTAGES:
            timeline = timelines[vantage.address]
            for window_start, _ in timeline.windows:
                assert injector.in_rotation(vantage.address, window_start)


class TestPacketLoss:
    def test_zero_rate_never_loses(self):
        injector = make_injector()
        assert not any(
            injector.packet_lost("US", device, 0, q)
            for device in range(50)
            for q in range(4)
        )

    def test_loss_rate_close_to_plan(self):
        injector = make_injector(packet_loss=0.25)
        trials = [
            injector.packet_lost("US", device, day, q)
            for device in range(200)
            for day in range(5)
            for q in range(2)
        ]
        rate = sum(trials) / len(trials)
        assert 0.20 < rate < 0.30

    def test_country_override(self):
        injector = make_injector(
            packet_loss=0.0, country_loss=(("BR", 1.0),)
        )
        assert injector.loss_rate("BR") == 1.0
        assert injector.loss_rate("US") == 0.0
        assert injector.packet_lost("BR", 1, 0, 0)
        assert not injector.packet_lost("US", 1, 0, 0)

    def test_decisions_keyed_by_identity_not_order(self):
        a = make_injector(packet_loss=0.3)
        b = make_injector(packet_loss=0.3)
        forward = [a.packet_lost("US", d, 0, 0) for d in range(100)]
        backward = [
            b.packet_lost("US", d, 0, 0) for d in reversed(range(100))
        ]
        assert forward == list(reversed(backward))


class TestCorruption:
    def test_zero_rate_never_corrupts(self):
        injector = make_injector()
        assert not any(
            injector.corrupts(device, 0, 0) for device in range(100)
        )

    def test_corrupt_bytes_deterministic(self):
        injector = make_injector(corruption_rate=1.0)
        data = bytes(range(48))
        assert injector.corrupt_bytes(data, 7, 3, 1) == injector.corrupt_bytes(
            data, 7, 3, 1
        )
        assert injector.corrupt_bytes(data, 7, 3, 1) != data

    def test_corrupt_bytes_truncates_or_flips_one_bit(self):
        injector = make_injector(corruption_rate=1.0)
        data = bytes(PACKET_LENGTH)
        saw_truncation = saw_flip = False
        for identity in range(200):
            mangled = injector.corrupt_bytes(data, identity, 0, 0)
            if len(mangled) < len(data):
                saw_truncation = True
            else:
                assert len(mangled) == len(data)
                differing = [
                    bin(a ^ b).count("1")
                    for a, b in zip(data, mangled)
                ]
                assert sum(differing) == 1
                saw_flip = True
        assert saw_truncation and saw_flip


class TestChaosHooks:
    def test_no_environment_is_a_noop(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS_TOKENS", raising=False)
        maybe_fail_shard(0)  # must not raise

    def test_token_consumed_and_raises(self, tmp_path, monkeypatch):
        (tmp_path / "token-1").touch()
        monkeypatch.setenv("REPRO_CHAOS_TOKENS", str(tmp_path))
        monkeypatch.setenv("REPRO_CHAOS_MODE", "raise")
        monkeypatch.delenv("REPRO_CHAOS_SHARD", raising=False)
        with pytest.raises(ChaosInjected):
            maybe_fail_shard(0)
        assert list(tmp_path.iterdir()) == []
        maybe_fail_shard(0)  # tokens exhausted: no-op

    def test_shard_filter(self, tmp_path, monkeypatch):
        (tmp_path / "token-1").touch()
        monkeypatch.setenv("REPRO_CHAOS_TOKENS", str(tmp_path))
        monkeypatch.setenv("REPRO_CHAOS_SHARD", "2")
        maybe_fail_shard(0)  # wrong shard: token untouched
        assert len(list(tmp_path.iterdir())) == 1
        with pytest.raises(ChaosInjected):
            maybe_fail_shard(2)

    def test_missing_token_directory_is_a_noop(self, tmp_path, monkeypatch):
        monkeypatch.setenv(
            "REPRO_CHAOS_TOKENS", str(tmp_path / "never-created")
        )
        maybe_fail_shard(0)
