"""The coalescing query engine: scheduling changes, answers never do.

The engine's contract is that ``coalesce=True`` answers are exactly the
``coalesce=False`` answers (which are exactly the index's answers),
while concurrent callers in one event-loop tick share a single kernel
call — observable through ``batches_executed`` and the
``repro_serve_*`` metrics, which is precisely how an operator would
check coalescing is happening under real load.
"""

import asyncio

import pytest

from repro.core.index import CachedOrigins
from repro.obs import DEFAULT_TIME_BUCKETS, MetricsRegistry
from repro.serve import (
    CoalescingEngine,
    QUERY_OPS,
    ServingIndex,
    ServingIndexError,
    build_serving_index,
    ensure_serving_index,
)

from .conftest import write_serve_store
from .test_format import oracle


@pytest.fixture(scope="module")
def served_index(serve_dir, routing):
    build_serving_index(serve_dir, routing=routing)
    with ServingIndex.open(serve_dir) as index:
        yield index


def run(coroutine):
    return asyncio.run(coroutine)


class TestEquivalence:
    @pytest.mark.parametrize("coalesce", [True, False])
    def test_engine_answers_equal_oracle(
        self, served_index, ground_truth, routing, queries, coalesce
    ):
        engine = CoalescingEngine(served_index, coalesce=coalesce)
        expected = oracle(ground_truth, routing, queries)

        async def ask():
            return {
                op: await engine.batch(op, queries) for op in QUERY_OPS
            }

        answers = run(ask())
        for op in QUERY_OPS:
            assert answers[op] == expected[op], op

    def test_concurrent_singles_equal_sequential_batch(
        self, served_index, queries
    ):
        engine = CoalescingEngine(served_index)

        async def ask():
            singles = await asyncio.gather(
                *(
                    engine.query("record", query)
                    for query in queries[:64]
                )
            )
            batch = await engine.batch("record", queries[:64])
            return singles, batch

        singles, batch = run(ask())
        assert singles == batch

    def test_single_query_surface(self, served_index, queries):
        engine = CoalescingEngine(served_index)

        async def ask():
            present = queries[0]
            return (
                await engine.query("contains", present),
                await engine.query("contains", 0),
            )

        assert run(ask()) == (True, False)


class TestCoalescing:
    def test_one_tick_of_singles_is_one_kernel_call(
        self, served_index, queries
    ):
        metrics = MetricsRegistry()
        engine = CoalescingEngine(served_index, metrics=metrics)

        async def ask():
            await asyncio.gather(
                *(
                    engine.query("lifetime", query)
                    for query in queries[:64]
                )
            )

        run(ask())
        assert engine.queries_served == 64
        assert engine.batches_executed == 1
        assert (
            metrics.counter_value(
                "repro_serve_queries_total", labels={"op": "lifetime"}
            )
            == 64
        )
        assert (
            metrics.counter_value("repro_serve_batches_total") == 1
        )

    def test_uncoalesced_baseline_is_one_call_per_query(
        self, served_index, queries
    ):
        engine = CoalescingEngine(served_index, coalesce=False)

        async def ask():
            await asyncio.gather(
                *(
                    engine.query("lifetime", query)
                    for query in queries[:16]
                )
            )

        run(ask())
        assert engine.batches_executed == 16

    def test_different_ops_coalesce_separately(
        self, served_index, queries
    ):
        engine = CoalescingEngine(served_index)

        async def ask():
            await asyncio.gather(
                *(
                    engine.query("contains", query)
                    for query in queries[:8]
                ),
                *(
                    engine.query("entropy", query)
                    for query in queries[:8]
                ),
            )

        run(ask())
        assert engine.queries_served == 16
        assert engine.batches_executed == 2  # one kernel call per op

    def test_max_batch_chunks_large_merges(self, served_index, queries):
        engine = CoalescingEngine(served_index, max_batch=5)

        async def ask():
            return await engine.batch("contains", queries[:17])

        answers = run(ask())
        assert len(answers) == 17
        assert engine.batches_executed == 4  # ceil(17 / 5)

    def test_describe_reports_shape(self, served_index):
        engine = CoalescingEngine(served_index, max_batch=123)
        info = engine.describe()
        assert info["coalesce"] is True
        assert info["max_batch"] == 123
        assert info["origin_source"] == "table"
        assert info["rows"] == served_index.rows


class TestErrors:
    def test_unknown_op_rejected(self, served_index):
        engine = CoalescingEngine(served_index)

        async def ask():
            await engine.batch("does-not-exist", [1])

        with pytest.raises(ValueError, match="unknown query op"):
            run(ask())

    def test_empty_batch_is_empty(self, served_index):
        engine = CoalescingEngine(served_index)

        async def ask():
            return await engine.batch("contains", [])

        assert run(ask()) == []

    def test_bad_max_batch_rejected(self, served_index):
        with pytest.raises(ValueError, match="max_batch"):
            CoalescingEngine(served_index, max_batch=0)

    def test_bad_address_fails_every_waiter_in_the_tick(
        self, served_index, queries
    ):
        engine = CoalescingEngine(served_index)

        async def ask():
            good = engine.query("contains", queries[0])
            bad = engine.query("contains", -1)
            results = await asyncio.gather(
                good, bad, return_exceptions=True
            )
            return results

        good_result, bad_result = run(ask())
        # The whole coalesced batch shares one kernel call, so a bad
        # address poisons the tick it arrived in -- deliberately: batch
        # validation happens before any per-op partial answering.
        assert isinstance(good_result, ValueError)
        assert isinstance(bad_result, ValueError)


class TestCancelledWaiters:
    def _latency_count(self, metrics, op):
        return metrics.histogram(
            "repro_serve_query_seconds",
            buckets=DEFAULT_TIME_BUCKETS,
            labels={"op": op},
        ).count

    def test_fully_cancelled_tick_touches_nothing(
        self, served_index, queries
    ):
        # A waiter cancelled between enqueue and flush gets no answer,
        # so it must contribute neither kernel work nor metrics.
        metrics = MetricsRegistry()
        engine = CoalescingEngine(served_index, metrics=metrics)

        async def scenario():
            task = asyncio.ensure_future(
                engine.batch("lifetime", queries[:8])
            )
            await asyncio.sleep(0)  # enqueued; flush not yet run
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            await asyncio.sleep(0)  # let the flush tick run

        run(scenario())
        assert engine.queries_served == 0
        assert engine.batches_executed == 0
        assert (
            metrics.counter_value(
                "repro_serve_queries_total", labels={"op": "lifetime"}
            )
            == 0
        )
        assert self._latency_count(metrics, "lifetime") == 0
        assert (
            metrics.counter_value("repro_serve_batches_total") == 0
        )

    def test_mixed_tick_counts_only_live_waiters(
        self, served_index, queries
    ):
        metrics = MetricsRegistry()
        engine = CoalescingEngine(served_index, metrics=metrics)

        async def scenario():
            dead = asyncio.ensure_future(
                engine.batch("contains", queries[:3])
            )
            live = asyncio.ensure_future(
                engine.batch("contains", queries[3:6])
            )
            await asyncio.sleep(0)  # both enqueued in the same tick
            dead.cancel()
            return await live

        answers = run(scenario())
        # The surviving waiter's answers are positionally its own —
        # compacting the batch must rebase slices, not shift them.
        direct = run(engine_direct(served_index, queries[3:6]))
        assert answers == direct
        assert engine.queries_served == 3
        assert engine.batches_executed == 1
        assert (
            metrics.counter_value(
                "repro_serve_queries_total", labels={"op": "contains"}
            )
            == 3
        )
        assert self._latency_count(metrics, "contains") == 1


async def engine_direct(index, addresses):
    engine = CoalescingEngine(index, coalesce=False)
    return await engine.batch("contains", addresses)


class TestIndexSwap:
    def test_swap_changes_answers_and_counts(self, tmp_path, routing):
        small = tmp_path / "small"
        grown = tmp_path / "grown"
        write_serve_store(small, per_segment=30, segments=1)
        store = write_serve_store(grown, per_segment=30, segments=1)
        extra = _commit_extra_segment(store)
        old_index = ensure_serving_index(small, routing=routing)
        new_index = ensure_serving_index(grown, routing=routing)
        try:
            engine = CoalescingEngine(old_index)

            async def scenario():
                before = await engine.batch("contains", [extra])
                # Enqueue against the old index, swap before the tick
                # flushes: the batch answers from the new snapshot, as
                # if it had arrived just after the swap.
                pending = asyncio.ensure_future(
                    engine.batch("contains", [extra])
                )
                await asyncio.sleep(0)
                returned = engine.swap_index(new_index)
                after = await pending
                return before, returned, after

            before, returned, after = run(scenario())
            assert before == [False]
            assert returned is old_index
            assert after == [True]
            assert engine.index is new_index
            assert engine.describe()["index_swaps"] == 1
        finally:
            old_index.close()
            new_index.close()


def _commit_extra_segment(store):
    """Append one fresh segment; returns an address only it contains."""
    from repro.core.corpus import AddressCorpus

    address = (0x2001 << 112) | (3 << 96) | (7 << 64) | 0xDEAD
    corpus = AddressCorpus("serve")
    corpus.record(address, 42.0)
    meta = store.write_segment(
        corpus, segment_id="seg-extra", start_day=21, end_day=28
    )
    store.commit([meta])
    return address


class TestOriginFallback:
    def test_resolver_serves_when_index_has_no_table(
        self, tmp_path, routing
    ):
        write_serve_store(tmp_path, per_segment=40, segments=2)
        build_serving_index(tmp_path)  # no routing: no origin table
        with ServingIndex.open(tmp_path) as index:
            assert not index.has_origin_table
            resolver = CachedOrigins.from_routing_table(
                routing, max_slash64s=64
            )
            engine = CoalescingEngine(index, origin_resolver=resolver)
            probes = [
                (0x2001 << 112) | (1 << 96) | (2 << 80) | (1 << 64) | 7,
                (0x2001 << 112) | (3 << 96),
                0,
            ]

            async def ask():
                return await engine.batch("origin", probes)

            answers = run(ask())
            assert answers == [
                routing.origin_asn(probe) for probe in probes
            ]
            assert engine.describe()["origin_source"] == "resolver"

    def test_no_table_no_resolver_raises_to_the_caller(self, tmp_path):
        write_serve_store(tmp_path, per_segment=10, segments=1)
        build_serving_index(tmp_path)
        with ServingIndex.open(tmp_path) as index:
            engine = CoalescingEngine(index)
            assert engine.describe()["origin_source"] is None

            async def ask():
                await engine.query("origin", 1)

            with pytest.raises(ServingIndexError, match="origin"):
                run(ask())
