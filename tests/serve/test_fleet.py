"""The pre-fork serving fleet, end to end through the real CLI.

Two contracts: **identity** — N workers SO_REUSEPORT-sharing a port are
observationally one server (bit-identical answers on every connection,
wherever the kernel lands it); and **supervision** — a SIGKILLed worker
is replaced (counted in ``repro_serve_worker_restarts_total``) while
the port keeps answering, and SIGTERM drains the whole fleet to a clean
exit with the per-worker metrics merged into one snapshot.
"""

import asyncio
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time

from repro.core.index import CorpusIndex
from repro.core.segments import SegmentedCorpusReader
from repro.serve import READY_PREFIX, RemoteHitlistClient

from .conftest import query_addresses, write_serve_store

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
CLI = [sys.executable, "-m", "repro.cli"]
CLI_ENV = {**os.environ, "PYTHONPATH": "src"}

#: Generous: single-core CI runners fork + rebuild slowly.
STARTUP_TIMEOUT = 120

_WORKER_LINE = re.compile(r"serve worker (\d+) listening pid=(\d+)")

#: The batch ops a client answers; used for identity comparison.
BATCH_METHODS = [
    "record_batch",
    "lifetime_batch",
    "entropy_batch",
    "features_batch",
    "contains_batch",
    "in_slash48_batch",
    "in_slash64_batch",
]


class _Fleet:
    """A ``repro serve`` subprocess with captured, parseable stderr."""

    def __init__(self, directory, *extra_args):
        self.process = subprocess.Popen(
            CLI + ["serve", str(directory), *extra_args],
            env=CLI_ENV,
            cwd=REPO_ROOT,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        self.stderr_lines = []
        self._stderr_thread = threading.Thread(
            target=self._pump_stderr, daemon=True
        )
        self._stderr_thread.start()
        ready = self.process.stdout.readline().strip()
        assert ready.startswith(READY_PREFIX), (
            ready,
            "".join(self.stderr_lines),
        )
        _, _, host, port = ready.split()
        self.host, self.port = host, int(port)

    def _pump_stderr(self):
        for line in self.process.stderr:
            self.stderr_lines.append(line)

    def worker_pids(self):
        """(worker_id, pid) pairs seen so far, in stderr order."""
        pairs = []
        for line in list(self.stderr_lines):
            match = _WORKER_LINE.search(line)
            if match:
                pairs.append(
                    (int(match.group(1)), int(match.group(2)))
                )
        return pairs

    def stop(self, expect_code=0):
        self.process.send_signal(signal.SIGTERM)
        code = self.process.wait(timeout=STARTUP_TIMEOUT)
        self._stderr_thread.join(timeout=10)
        assert code == expect_code, "".join(self.stderr_lines)

    def kill(self):
        if self.process.poll() is None:  # pragma: no cover - cleanup
            self.process.kill()
            self.process.wait(timeout=30)


def _ask_everything(host, port, queries, connections=3):
    """Per-connection answer dicts (separate connections land on
    separate workers under SO_REUSEPORT)."""

    async def scenario():
        answers = []
        for _ in range(connections):
            client = await RemoteHitlistClient.connect(host, port)
            async with client:
                answers.append(
                    {
                        method: await getattr(client, method)(queries)
                        for method in BATCH_METHODS
                    }
                )
        return answers

    return asyncio.run(scenario())


class TestMultiWorkerIdentity:
    def test_two_workers_bit_identical_to_one(self, tmp_path):
        write_serve_store(tmp_path, per_segment=60, segments=2)
        ground_truth = CorpusIndex.build(
            SegmentedCorpusReader.open(tmp_path).load()
        )
        queries = query_addresses(ground_truth.addresses)

        single = _Fleet(tmp_path, "--reload-interval", "0")
        try:
            baseline = _ask_everything(
                single.host, single.port, queries, connections=1
            )[0]
            single.stop()
        finally:
            single.kill()

        fleet = _Fleet(
            tmp_path,
            "--serve-workers",
            "2",
            "--reload-interval",
            "0",
        )
        try:
            # Wait until both workers announced themselves.
            deadline = time.monotonic() + STARTUP_TIMEOUT
            while len(fleet.worker_pids()) < 2:
                assert time.monotonic() < deadline, (
                    "".join(fleet.stderr_lines)
                )
                time.sleep(0.05)
            for answers in _ask_everything(
                fleet.host, fleet.port, queries, connections=4
            ):
                assert answers == baseline
            fleet.stop()
        finally:
            fleet.kill()


class TestSupervision:
    def test_killed_worker_is_replaced_and_counted(self, tmp_path):
        write_serve_store(tmp_path, per_segment=40, segments=2)
        ground_truth = CorpusIndex.build(
            SegmentedCorpusReader.open(tmp_path).load()
        )
        present = ground_truth.addresses[0]
        metrics_path = tmp_path / "fleet-metrics.json"

        fleet = _Fleet(
            tmp_path,
            "--serve-workers",
            "2",
            "--reload-interval",
            "0",
            "--metrics-out",
            str(metrics_path),
        )
        try:
            deadline = time.monotonic() + STARTUP_TIMEOUT
            while len(fleet.worker_pids()) < 2:
                assert time.monotonic() < deadline
                time.sleep(0.05)
            victim = fleet.worker_pids()[0][1]
            os.kill(victim, signal.SIGKILL)
            # The supervisor notices the death and forks a replacement
            # (a third "listening" announcement).
            while len(fleet.worker_pids()) < 3:
                assert time.monotonic() < deadline, (
                    "".join(fleet.stderr_lines)
                )
                time.sleep(0.05)
            # The fleet still answers on the same port.
            async def probe():
                client = await RemoteHitlistClient.connect(
                    fleet.host, fleet.port
                )
                async with client:
                    return await client.contains(present)

            assert asyncio.run(probe()) is True
            fleet.stop()
        finally:
            fleet.kill()

        snapshot = json.loads(metrics_path.read_text())
        counters = snapshot["counters"]
        assert counters["repro_serve_worker_restarts_total"] >= 1
        # Worker-side serving telemetry was merged into the snapshot.
        assert counters.get("repro_serve_requests_total", 0) >= 1
        # ...and the per-worker partials were cleaned up.
        assert not list(tmp_path.glob("fleet-metrics.json.w*"))
