"""The TCP service, the client pair, ``api.connect`` and the CLI.

The remote client's answers must be byte-for-byte the local engine's
(JSON round-trips 128-bit ints and doubles exactly), errors must be
per-request rather than per-connection, and — the concurrency contract
— a reader process holding the mmap keeps its consistent snapshot while
``compact()`` plus a rebuild atomically replace the index under it.
"""

import asyncio
import contextlib
import json
import os
import signal
import subprocess
import sys

import pytest

from repro import api
from repro.core.index import CorpusIndex
from repro.core.segments import SegmentedCorpusReader, SegmentStore
from repro.obs import MetricsRegistry
from repro.serve import (
    CoalescingEngine,
    HitlistServer,
    LocalHitlistClient,
    READY_PREFIX,
    RemoteHitlistClient,
    SERVING_INDEX_NAME,
    ServingIndex,
    build_serving_index,
)

from .conftest import write_serve_store
from .test_format import oracle

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))


@pytest.fixture(scope="module")
def served_index(serve_dir, routing):
    build_serving_index(serve_dir, routing=routing)
    with ServingIndex.open(serve_dir) as index:
        yield index


def run(coroutine):
    return asyncio.run(coroutine)


async def _client_pair(index, metrics=None):
    engine = CoalescingEngine(index, metrics=metrics)
    server = HitlistServer(engine, metrics=metrics)
    host, port = await server.start()
    remote = await RemoteHitlistClient.connect(host, port)
    return server, remote, LocalHitlistClient(engine)


class TestRemoteEqualsLocal:
    def test_every_op_round_trips_bit_identically(
        self, served_index, ground_truth, routing, queries
    ):
        expected = oracle(ground_truth, routing, queries)

        async def scenario():
            server, remote, local = await _client_pair(served_index)
            try:
                for op, method in [
                    ("record", "record_batch"),
                    ("lifetime", "lifetime_batch"),
                    ("entropy", "entropy_batch"),
                    ("features", "features_batch"),
                    ("origin", "origin_batch"),
                    ("contains", "contains_batch"),
                    ("slash48", "in_slash48_batch"),
                    ("slash64", "in_slash64_batch"),
                ]:
                    remote_answer = await getattr(remote, method)(
                        queries
                    )
                    local_answer = await getattr(local, method)(queries)
                    assert remote_answer == local_answer, op
                    assert remote_answer == expected[op], op
            finally:
                await remote.aclose()
                await server.aclose()

        run(scenario())

    def test_scalar_surface(self, served_index, queries):
        present = queries[0]

        async def scenario():
            server, remote, local = await _client_pair(served_index)
            try:
                assert await remote.contains(present) is True
                assert await remote.contains(0) is False
                assert await remote.record(present) == await local.record(
                    present
                )
                assert await remote.origin(present) == await local.origin(
                    present
                )
                assert await remote.lifetime(0) is None
            finally:
                await remote.aclose()
                await server.aclose()

        run(scenario())

    def test_pipelined_requests_coalesce_server_side(
        self, served_index, queries
    ):
        metrics = MetricsRegistry()

        async def scenario():
            server, remote, _ = await _client_pair(
                served_index, metrics=metrics
            )
            engine = server.engine
            try:
                answers = await asyncio.gather(
                    *(
                        remote.lifetime(query)
                        for query in queries[:48]
                    )
                )
                direct = await engine.batch("lifetime", queries[:48])
                assert answers == direct
                # 48 concurrent requests from one connection landed in
                # far fewer kernel calls than requests.
                assert engine.queries_served >= 48
                assert engine.batches_executed < 48
            finally:
                await remote.aclose()
                await server.aclose()

        run(scenario())

    def test_stats_op(self, served_index):
        async def scenario():
            server, remote, local = await _client_pair(served_index)
            try:
                stats = await remote.stats()
                assert stats["rows"] == served_index.rows
                assert stats["has_origin_table"] is True
                assert (await local.stats())["rows"] == stats["rows"]
            finally:
                await remote.aclose()
                await server.aclose()

        run(scenario())


class TestProtocolErrors:
    def test_bad_op_errors_that_request_only(
        self, served_index, queries
    ):
        metrics = MetricsRegistry()

        async def scenario():
            server, remote, _ = await _client_pair(
                served_index, metrics=metrics
            )
            try:
                with pytest.raises(RuntimeError, match="server error"):
                    await remote._request("frobnicate", [1])
                # The connection survives and still answers.
                assert await remote.contains(queries[0]) is True
            finally:
                await remote.aclose()
                await server.aclose()

        run(scenario())
        assert (
            metrics.counter_value("repro_serve_protocol_errors_total")
            == 1
        )

    def test_malformed_json_and_shapes(self, served_index):
        # A reply the server cannot attribute to a request id (the
        # line never parsed, or parsed to a non-object) is followed by
        # a connection close: a pipelined client could never correlate
        # it, so leaving the stream open would strand some caller.
        async def scenario():
            server, _, _ = await _client_pair(served_index)
            try:
                for raw in [b"this is not json\n", b"[1, 2, 3]\n"]:
                    reader, writer = await asyncio.open_connection(
                        server.host, server.port
                    )
                    writer.write(raw)
                    await writer.drain()
                    reply = json.loads(await reader.readline())
                    assert reply["id"] is None
                    assert "error" in reply
                    # ...and then EOF: the connection is closed.
                    assert await reader.readline() == b""
                    writer.close()
                    await writer.wait_closed()
                # A *well-formed* bad request (id present) errors that
                # request only; the connection survives and serves on.
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                writer.write(
                    b'{"id": 9, "op": "contains", "args": 5}\n'
                )
                await writer.drain()
                reply = json.loads(await reader.readline())
                assert reply["id"] == 9
                assert "error" in reply
                writer.write(
                    b'{"id": 10, "op": "contains", "args": [0]}\n'
                )
                await writer.drain()
                reply = json.loads(await reader.readline())
                assert reply == {"id": 10, "results": [False]}
                writer.close()
                await writer.wait_closed()
            finally:
                await server.aclose()

        run(scenario())

    def test_closed_client_raises(self, served_index):
        async def scenario():
            server, remote, _ = await _client_pair(served_index)
            await remote.aclose()
            try:
                with pytest.raises(ConnectionError):
                    await remote.contains(1)
            finally:
                await server.aclose()

        run(scenario())


class _TrackingEngine(CoalescingEngine):
    """Counts concurrently in-flight ``batch`` calls (the server's
    per-request tasks all sit inside one)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.inflight = 0
        self.max_inflight = 0

    async def batch(self, op, addresses):
        self.inflight += 1
        self.max_inflight = max(self.max_inflight, self.inflight)
        try:
            return await super().batch(op, addresses)
        finally:
            self.inflight -= 1


class TestBackpressure:
    def test_pipelined_flood_stays_under_cap(
        self, served_index, queries
    ):
        # A client pipelining 10k requests while reading replies late
        # must never put more than max_pipeline requests in flight:
        # the server stops reading the connection at the cap.
        total = 10_000
        cap = 8
        metrics = MetricsRegistry()

        async def scenario():
            engine = _TrackingEngine(served_index, metrics=metrics)
            server = HitlistServer(
                engine, metrics=metrics, max_pipeline=cap
            )
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                arg = queries[0]

                async def flood():
                    for request_id in range(total):
                        writer.write(
                            json.dumps(
                                {
                                    "id": request_id,
                                    "op": "contains",
                                    "args": [arg],
                                }
                            ).encode()
                            + b"\n"
                        )
                        if request_id % 256 == 0:
                            await writer.drain()
                    await writer.drain()

                flood_task = asyncio.ensure_future(flood())
                # Read nothing for a moment: replies back up against
                # our receive buffer and the server must stall.
                await asyncio.sleep(0.3)
                seen = set()
                while len(seen) < total:
                    reply = json.loads(await reader.readline())
                    assert "error" not in reply
                    seen.add(reply["id"])
                await flood_task
                writer.close()
                await writer.wait_closed()
                return engine.max_inflight, seen
            finally:
                await server.aclose()

        max_inflight, seen = run(scenario())
        assert seen == set(range(total))  # every request answered
        assert max_inflight <= cap
        assert (
            metrics.counter_value(
                "repro_serve_backpressure_stalls_total"
            )
            > 0
        )

    def test_poisoned_stream_fails_pipelined_client_fast(
        self, served_index, queries
    ):
        # Regression: a line the server cannot attribute to a request
        # id used to leave the connection open while the client
        # silently dropped the null-id error reply — so the caller
        # whose request was eaten awaited forever.  Now the server
        # closes the connection and the client fails every in-flight
        # and future request with ConnectionError, fast.
        async def scenario():
            server, remote, _ = await _client_pair(served_index)
            try:
                assert await remote.contains(queries[0]) is True
                remote._writer.write(b"this is not json\n")
                await remote._writer.drain()
                with pytest.raises(ConnectionError):
                    # A couple of requests may still race their
                    # replies past the poison line; the connection
                    # must die within a bounded number of calls
                    # rather than hang any of them.
                    for _ in range(50):
                        await asyncio.wait_for(
                            remote.contains(queries[0]), timeout=10
                        )
            finally:
                await remote.aclose()
                await server.aclose()

        run(scenario())


class _SlowEngine(CoalescingEngine):
    """Answers after a delay — keeps requests in flight for drain tests."""

    def __init__(self, *args, delay=0.05, **kwargs):
        super().__init__(*args, **kwargs)
        self.delay = delay

    async def batch(self, op, addresses):
        await asyncio.sleep(self.delay)
        return await super().batch(op, addresses)


class TestDrain:
    def test_aclose_drains_accepted_requests(
        self, served_index, queries
    ):
        # Shutdown under load: every request the server *accepted*
        # (read off a connection) must flush its reply before the
        # server dies, given a drain timeout.
        total = 200
        metrics = MetricsRegistry()

        async def scenario():
            engine = _SlowEngine(
                served_index, delay=0.05, metrics=metrics
            )
            server = HitlistServer(
                engine, metrics=metrics, max_pipeline=total
            )
            await server.start()
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            arg = queries[0]
            for request_id in range(total):
                writer.write(
                    json.dumps(
                        {
                            "id": request_id,
                            "op": "contains",
                            "args": [arg],
                        }
                    ).encode()
                    + b"\n"
                )
            await writer.drain()
            # Wait until the server has read (accepted) all of them...
            for _ in range(2000):
                if (
                    metrics.counter_value(
                        "repro_serve_requests_total"
                    )
                    >= total
                ):
                    break
                await asyncio.sleep(0.005)
            # ...then SIGTERM-equivalent: close with a drain budget.
            await server.aclose(drain_timeout=30)
            seen = set()
            while True:
                line = await reader.readline()
                if not line:
                    break
                reply = json.loads(line)
                assert "error" not in reply
                seen.add(reply["id"])
            writer.close()
            with contextlib.suppress(ConnectionError):
                await writer.wait_closed()
            return seen

        seen = run(scenario())
        assert seen == set(range(total))  # zero accepted requests lost


class TestApiConnect:
    def test_local_directory_target(
        self, tmp_path, routing, monkeypatch
    ):
        write_serve_store(tmp_path, per_segment=40, segments=2)
        gt = CorpusIndex.build(
            SegmentedCorpusReader.open(tmp_path).load()
        )
        present = gt.addresses[0]

        async def scenario():
            client = await api.connect(tmp_path, routing=routing)
            async with client:
                assert await client.contains(present) is True
                assert await client.origin(
                    present
                ) == routing.origin_asn(present)
                stats = await client.stats()
                assert stats["rows"] == len(gt.addresses)

        run(scenario())
        assert (tmp_path / SERVING_INDEX_NAME).exists()

    def test_host_port_target(self, served_index, queries):
        async def scenario():
            engine = CoalescingEngine(served_index)
            async with HitlistServer(engine) as server:
                client = await api.connect(
                    f"{server.host}:{server.port}"
                )
                async with client:
                    assert isinstance(client, RemoteHitlistClient)
                    assert await client.contains(queries[0]) is True

        run(scenario())


CLI = [sys.executable, "-m", "repro.cli"]
CLI_ENV = {**os.environ, "PYTHONPATH": "src"}


class TestCli:
    def test_build_only(self, tmp_path):
        write_serve_store(tmp_path, per_segment=20, segments=2)
        process = subprocess.run(
            CLI
            + [
                "serve",
                str(tmp_path),
                "--build-only",
                "--metrics-out",
                str(tmp_path / "metrics.json"),
            ],
            env=CLI_ENV,
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert process.returncode == 0, process.stderr
        assert SERVING_INDEX_NAME in process.stdout
        assert (tmp_path / SERVING_INDEX_NAME).exists()
        metrics = json.loads((tmp_path / "metrics.json").read_text())
        assert metrics  # telemetry snapshot written

    def test_missing_store_fails_cleanly(self, tmp_path):
        process = subprocess.run(
            CLI + ["serve", str(tmp_path / "nope"), "--build-only"],
            env=CLI_ENV,
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert process.returncode == 2
        assert "no segment store" in process.stderr

    def test_serve_and_query_over_tcp(self, tmp_path):
        write_serve_store(tmp_path, per_segment=20, segments=2)
        gt = CorpusIndex.build(
            SegmentedCorpusReader.open(tmp_path).load()
        )
        present = gt.addresses[0]
        process = subprocess.Popen(
            CLI + ["serve", str(tmp_path)],
            env=CLI_ENV,
            cwd=REPO_ROOT,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            ready = process.stdout.readline().strip()
            assert ready.startswith(READY_PREFIX), ready
            _, _, host, port = ready.split()

            async def scenario():
                client = await RemoteHitlistClient.connect(
                    host, int(port)
                )
                async with client:
                    assert await client.contains(present) is True
                    record = await client.record(present)
                    row = gt.addresses.index(present)
                    assert record == (
                        gt.first[row],
                        gt.last[row],
                        gt.counts[row],
                    )

            run(scenario())
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup
                process.kill()
                process.wait(timeout=30)


READER_SCRIPT = """
import json, sys
from repro.serve import ServingIndex

directory = sys.argv[1]
queries = json.loads(sys.argv[2])
index = ServingIndex.open(directory)

def answers():
    return {
        "generation": index.generation,
        "contains": index.contains_batch(queries),
        "record": index.record_batch(queries),
        "origin": index.origin_batch(queries),
    }

print(json.dumps(answers()), flush=True)
sys.stdin.readline()  # parent compacts + rebuilds while we hold the mmap
print(json.dumps(answers()), flush=True)
"""


class TestConcurrentReaders:
    def test_reader_keeps_snapshot_across_compaction(
        self, tmp_path, routing
    ):
        """Satellite (d): compaction + rebuild never disturb a held mmap.

        A second process opens the serving index, the parent then
        ``compact()``s the store (rewriting segments, hence the
        manifest digest) and rebuilds the index — atomically replacing
        the file.  The reader's held generation keeps answering exactly
        what it answered before; a fresh open sees the new generation
        with the same (compaction-invariant) answers.
        """
        store = write_serve_store(tmp_path, per_segment=50, segments=3)
        build_serving_index(tmp_path, routing=routing)
        gt = CorpusIndex.build(
            SegmentedCorpusReader.open(tmp_path).load()
        )
        queries = sorted(gt.addresses)[:40] + [0, (1 << 128) - 1]

        reader = subprocess.Popen(
            [
                sys.executable,
                "-c",
                READER_SCRIPT,
                str(tmp_path),
                json.dumps(queries),
            ],
            env=CLI_ENV,
            cwd=REPO_ROOT,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            before = json.loads(reader.stdout.readline())

            # Replace the index under the reader: compact (merges every
            # small segment into one) then rebuild.
            manifest = store.compact(small_bytes=float("inf"))
            assert len(manifest.segments) == 1
            build_serving_index(tmp_path, routing=routing)

            reader.stdin.write("go\n")
            reader.stdin.flush()
            after = json.loads(reader.stdout.readline())
            assert reader.wait(timeout=60) == 0
        finally:
            if reader.poll() is None:  # pragma: no cover - cleanup
                reader.kill()
                reader.wait(timeout=30)

        # The held mapping is a consistent snapshot: same generation,
        # byte-identical answers, before and after the swap.
        assert after == before

        # A fresh open sees the new generation; compaction preserved
        # the observable corpus, so the answers are unchanged too.
        with ServingIndex.open(tmp_path) as fresh:
            assert fresh.generation == before["generation"] + 1
            assert fresh.contains_batch(queries) == before["contains"]
            assert [
                None if record is None else list(record)
                for record in fresh.record_batch(queries)
            ] == before["record"]
            assert fresh.origin_batch(queries) == before["origin"]
