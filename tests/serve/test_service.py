"""The TCP service, the client pair, ``api.connect`` and the CLI.

The remote client's answers must be byte-for-byte the local engine's
(JSON round-trips 128-bit ints and doubles exactly), errors must be
per-request rather than per-connection, and — the concurrency contract
— a reader process holding the mmap keeps its consistent snapshot while
``compact()`` plus a rebuild atomically replace the index under it.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys

import pytest

from repro import api
from repro.core.index import CorpusIndex
from repro.core.segments import SegmentedCorpusReader, SegmentStore
from repro.obs import MetricsRegistry
from repro.serve import (
    CoalescingEngine,
    HitlistServer,
    LocalHitlistClient,
    READY_PREFIX,
    RemoteHitlistClient,
    SERVING_INDEX_NAME,
    ServingIndex,
    build_serving_index,
)

from .conftest import write_serve_store
from .test_format import oracle

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))


@pytest.fixture(scope="module")
def served_index(serve_dir, routing):
    build_serving_index(serve_dir, routing=routing)
    with ServingIndex.open(serve_dir) as index:
        yield index


def run(coroutine):
    return asyncio.run(coroutine)


async def _client_pair(index, metrics=None):
    engine = CoalescingEngine(index, metrics=metrics)
    server = HitlistServer(engine, metrics=metrics)
    host, port = await server.start()
    remote = await RemoteHitlistClient.connect(host, port)
    return server, remote, LocalHitlistClient(engine)


class TestRemoteEqualsLocal:
    def test_every_op_round_trips_bit_identically(
        self, served_index, ground_truth, routing, queries
    ):
        expected = oracle(ground_truth, routing, queries)

        async def scenario():
            server, remote, local = await _client_pair(served_index)
            try:
                for op, method in [
                    ("record", "record_batch"),
                    ("lifetime", "lifetime_batch"),
                    ("entropy", "entropy_batch"),
                    ("features", "features_batch"),
                    ("origin", "origin_batch"),
                    ("contains", "contains_batch"),
                    ("slash48", "in_slash48_batch"),
                    ("slash64", "in_slash64_batch"),
                ]:
                    remote_answer = await getattr(remote, method)(
                        queries
                    )
                    local_answer = await getattr(local, method)(queries)
                    assert remote_answer == local_answer, op
                    assert remote_answer == expected[op], op
            finally:
                await remote.aclose()
                await server.aclose()

        run(scenario())

    def test_scalar_surface(self, served_index, queries):
        present = queries[0]

        async def scenario():
            server, remote, local = await _client_pair(served_index)
            try:
                assert await remote.contains(present) is True
                assert await remote.contains(0) is False
                assert await remote.record(present) == await local.record(
                    present
                )
                assert await remote.origin(present) == await local.origin(
                    present
                )
                assert await remote.lifetime(0) is None
            finally:
                await remote.aclose()
                await server.aclose()

        run(scenario())

    def test_pipelined_requests_coalesce_server_side(
        self, served_index, queries
    ):
        metrics = MetricsRegistry()

        async def scenario():
            server, remote, _ = await _client_pair(
                served_index, metrics=metrics
            )
            engine = server.engine
            try:
                answers = await asyncio.gather(
                    *(
                        remote.lifetime(query)
                        for query in queries[:48]
                    )
                )
                direct = await engine.batch("lifetime", queries[:48])
                assert answers == direct
                # 48 concurrent requests from one connection landed in
                # far fewer kernel calls than requests.
                assert engine.queries_served >= 48
                assert engine.batches_executed < 48
            finally:
                await remote.aclose()
                await server.aclose()

        run(scenario())

    def test_stats_op(self, served_index):
        async def scenario():
            server, remote, local = await _client_pair(served_index)
            try:
                stats = await remote.stats()
                assert stats["rows"] == served_index.rows
                assert stats["has_origin_table"] is True
                assert (await local.stats())["rows"] == stats["rows"]
            finally:
                await remote.aclose()
                await server.aclose()

        run(scenario())


class TestProtocolErrors:
    def test_bad_op_errors_that_request_only(
        self, served_index, queries
    ):
        metrics = MetricsRegistry()

        async def scenario():
            server, remote, _ = await _client_pair(
                served_index, metrics=metrics
            )
            try:
                with pytest.raises(RuntimeError, match="server error"):
                    await remote._request("frobnicate", [1])
                # The connection survives and still answers.
                assert await remote.contains(queries[0]) is True
            finally:
                await remote.aclose()
                await server.aclose()

        run(scenario())
        assert (
            metrics.counter_value("repro_serve_protocol_errors_total")
            == 1
        )

    def test_malformed_json_and_shapes(self, served_index):
        async def scenario():
            server, _, _ = await _client_pair(served_index)
            try:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                for raw in [
                    b"this is not json\n",
                    b"[1, 2, 3]\n",
                    b'{"id": 9, "op": "contains", "args": 5}\n',
                ]:
                    writer.write(raw)
                    await writer.drain()
                    reply = json.loads(await reader.readline())
                    assert "error" in reply
                # Still serving after three bad requests.
                writer.write(
                    b'{"id": 10, "op": "contains", "args": [0]}\n'
                )
                await writer.drain()
                reply = json.loads(await reader.readline())
                assert reply == {"id": 10, "results": [False]}
                writer.close()
                await writer.wait_closed()
            finally:
                await server.aclose()

        run(scenario())

    def test_closed_client_raises(self, served_index):
        async def scenario():
            server, remote, _ = await _client_pair(served_index)
            await remote.aclose()
            try:
                with pytest.raises(ConnectionError):
                    await remote.contains(1)
            finally:
                await server.aclose()

        run(scenario())


class TestApiConnect:
    def test_local_directory_target(
        self, tmp_path, routing, monkeypatch
    ):
        write_serve_store(tmp_path, per_segment=40, segments=2)
        gt = CorpusIndex.build(
            SegmentedCorpusReader.open(tmp_path).load()
        )
        present = gt.addresses[0]

        async def scenario():
            client = await api.connect(tmp_path, routing=routing)
            async with client:
                assert await client.contains(present) is True
                assert await client.origin(
                    present
                ) == routing.origin_asn(present)
                stats = await client.stats()
                assert stats["rows"] == len(gt.addresses)

        run(scenario())
        assert (tmp_path / SERVING_INDEX_NAME).exists()

    def test_host_port_target(self, served_index, queries):
        async def scenario():
            engine = CoalescingEngine(served_index)
            async with HitlistServer(engine) as server:
                client = await api.connect(
                    f"{server.host}:{server.port}"
                )
                async with client:
                    assert isinstance(client, RemoteHitlistClient)
                    assert await client.contains(queries[0]) is True

        run(scenario())


CLI = [sys.executable, "-m", "repro.cli"]
CLI_ENV = {**os.environ, "PYTHONPATH": "src"}


class TestCli:
    def test_build_only(self, tmp_path):
        write_serve_store(tmp_path, per_segment=20, segments=2)
        process = subprocess.run(
            CLI
            + [
                "serve",
                str(tmp_path),
                "--build-only",
                "--metrics-out",
                str(tmp_path / "metrics.json"),
            ],
            env=CLI_ENV,
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert process.returncode == 0, process.stderr
        assert SERVING_INDEX_NAME in process.stdout
        assert (tmp_path / SERVING_INDEX_NAME).exists()
        metrics = json.loads((tmp_path / "metrics.json").read_text())
        assert metrics  # telemetry snapshot written

    def test_missing_store_fails_cleanly(self, tmp_path):
        process = subprocess.run(
            CLI + ["serve", str(tmp_path / "nope"), "--build-only"],
            env=CLI_ENV,
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert process.returncode == 2
        assert "no segment store" in process.stderr

    def test_serve_and_query_over_tcp(self, tmp_path):
        write_serve_store(tmp_path, per_segment=20, segments=2)
        gt = CorpusIndex.build(
            SegmentedCorpusReader.open(tmp_path).load()
        )
        present = gt.addresses[0]
        process = subprocess.Popen(
            CLI + ["serve", str(tmp_path)],
            env=CLI_ENV,
            cwd=REPO_ROOT,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            ready = process.stdout.readline().strip()
            assert ready.startswith(READY_PREFIX), ready
            _, _, host, port = ready.split()

            async def scenario():
                client = await RemoteHitlistClient.connect(
                    host, int(port)
                )
                async with client:
                    assert await client.contains(present) is True
                    record = await client.record(present)
                    row = gt.addresses.index(present)
                    assert record == (
                        gt.first[row],
                        gt.last[row],
                        gt.counts[row],
                    )

            run(scenario())
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup
                process.kill()
                process.wait(timeout=30)


READER_SCRIPT = """
import json, sys
from repro.serve import ServingIndex

directory = sys.argv[1]
queries = json.loads(sys.argv[2])
index = ServingIndex.open(directory)

def answers():
    return {
        "generation": index.generation,
        "contains": index.contains_batch(queries),
        "record": index.record_batch(queries),
        "origin": index.origin_batch(queries),
    }

print(json.dumps(answers()), flush=True)
sys.stdin.readline()  # parent compacts + rebuilds while we hold the mmap
print(json.dumps(answers()), flush=True)
"""


class TestConcurrentReaders:
    def test_reader_keeps_snapshot_across_compaction(
        self, tmp_path, routing
    ):
        """Satellite (d): compaction + rebuild never disturb a held mmap.

        A second process opens the serving index, the parent then
        ``compact()``s the store (rewriting segments, hence the
        manifest digest) and rebuilds the index — atomically replacing
        the file.  The reader's held generation keeps answering exactly
        what it answered before; a fresh open sees the new generation
        with the same (compaction-invariant) answers.
        """
        store = write_serve_store(tmp_path, per_segment=50, segments=3)
        build_serving_index(tmp_path, routing=routing)
        gt = CorpusIndex.build(
            SegmentedCorpusReader.open(tmp_path).load()
        )
        queries = sorted(gt.addresses)[:40] + [0, (1 << 128) - 1]

        reader = subprocess.Popen(
            [
                sys.executable,
                "-c",
                READER_SCRIPT,
                str(tmp_path),
                json.dumps(queries),
            ],
            env=CLI_ENV,
            cwd=REPO_ROOT,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            before = json.loads(reader.stdout.readline())

            # Replace the index under the reader: compact (merges every
            # small segment into one) then rebuild.
            manifest = store.compact(small_bytes=float("inf"))
            assert len(manifest.segments) == 1
            build_serving_index(tmp_path, routing=routing)

            reader.stdin.write("go\n")
            reader.stdin.flush()
            after = json.loads(reader.stdout.readline())
            assert reader.wait(timeout=60) == 0
        finally:
            if reader.poll() is None:  # pragma: no cover - cleanup
                reader.kill()
                reader.wait(timeout=30)

        # The held mapping is a consistent snapshot: same generation,
        # byte-identical answers, before and after the swap.
        assert after == before

        # A fresh open sees the new generation; compaction preserved
        # the observable corpus, so the answers are unchanged too.
        with ServingIndex.open(tmp_path) as fresh:
            assert fresh.generation == before["generation"] + 1
            assert fresh.contains_batch(queries) == before["contains"]
            assert [
                None if record is None else list(record)
                for record in fresh.record_batch(queries)
            ] == before["record"]
            assert fresh.origin_batch(queries) == before["origin"]
