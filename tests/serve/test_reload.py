"""Live index reload: commits land without a restart, queries never fail.

The contract under test is the serving side of the append-only store:
when ``commit()`` (or ``compact()``) moves ``MANIFEST.json``, a watcher
rebuilds ``SERVING.rsi`` under the advisory build lock and swaps it
into the engine between ticks — while a sustained query load observes
**zero** failures and answers that are always consistent with *some*
committed manifest (the old one right up to the swap, the new one
after).
"""

import asyncio

import pytest

from repro.core.corpus import AddressCorpus
from repro.core.index import CorpusIndex
from repro.core.segments import SegmentedCorpusReader
from repro.obs import MetricsRegistry
from repro import api
from repro.serve import (
    CoalescingEngine,
    IndexReloader,
    ensure_serving_index,
)

from .conftest import make_routing, write_serve_store

#: How long to wait for one reload to land (index rebuilds run in a
#: thread; CI machines can be slow and single-core).
RELOAD_DEADLINE = 60.0


def _commit_segment(store, number):
    """Commit one new segment; returns the addresses only it contains."""
    addresses = [
        (0x2001 << 112) | (3 << 96) | (number << 64) | offset
        for offset in range(1, 6)
    ]
    corpus = AddressCorpus("serve")
    for address in addresses:
        corpus.record(address, number * 1000.0)
    meta = store.write_segment(
        corpus,
        segment_id=f"seg-live-{number:03d}",
        start_day=100 + number * 7,
        end_day=100 + (number + 1) * 7,
    )
    store.commit([meta])
    return addresses


async def _await_reload(metrics, target):
    deadline = asyncio.get_running_loop().time() + RELOAD_DEADLINE
    while (
        metrics.counter_value("repro_serve_index_reloads_total")
        < target
    ):
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError(
                f"reload {target} did not land within "
                f"{RELOAD_DEADLINE}s"
            )
        await asyncio.sleep(0.02)


class TestReloadUnderLoad:
    def test_three_swaps_zero_failed_requests(self, tmp_path):
        store = write_serve_store(tmp_path, per_segment=40, segments=1)
        routing = make_routing()
        metrics = MetricsRegistry()
        baseline = sorted(
            CorpusIndex.build(
                SegmentedCorpusReader.open(tmp_path).load()
            ).addresses
        )
        index = ensure_serving_index(tmp_path, routing=routing)
        engine = CoalescingEngine(index, metrics=metrics)
        reloader = IndexReloader(
            engine,
            tmp_path,
            routing=routing,
            metrics=metrics,
            interval=0.03,
        )
        failures = []
        answered = [0]

        async def load():
            # Sustained query pressure across every swap: baseline
            # addresses must answer True under the old index and every
            # new one alike.
            while True:
                try:
                    answers = await engine.batch("contains", baseline)
                    if answers != [True] * len(baseline):
                        failures.append(("wrong answers", answers))
                    answered[0] += len(answers)
                except asyncio.CancelledError:
                    raise
                except Exception as error:
                    failures.append(("exception", repr(error)))
                await asyncio.sleep(0)

        async def scenario():
            watcher = asyncio.ensure_future(reloader.run())
            loader = asyncio.ensure_future(load())
            loop = asyncio.get_running_loop()
            try:
                for number in range(1, 4):
                    fresh = await loop.run_in_executor(
                        None, _commit_segment, store, number
                    )
                    await _await_reload(metrics, number)
                    # The freshly committed addresses are served
                    # without any restart.
                    assert await engine.batch(
                        "contains", fresh
                    ) == [True] * len(fresh)
            finally:
                for task in (watcher, loader):
                    task.cancel()
                for task in (watcher, loader):
                    try:
                        await task
                    except (asyncio.CancelledError, Exception):
                        pass

        try:
            asyncio.run(scenario())
        finally:
            engine.index.close()
        assert failures == []
        assert answered[0] > 0
        assert (
            metrics.counter_value("repro_serve_index_reloads_total")
            == 3
        )
        assert engine.index_swaps == 3
        assert engine.describe()["index_swaps"] == 3

    def test_unchanged_manifest_never_swaps(self, tmp_path):
        write_serve_store(tmp_path, per_segment=20, segments=1)
        metrics = MetricsRegistry()
        index = ensure_serving_index(tmp_path)
        engine = CoalescingEngine(index, metrics=metrics)
        reloader = IndexReloader(
            engine, tmp_path, metrics=metrics, interval=0.01
        )

        async def scenario():
            for _ in range(5):
                assert await reloader.poll_once() is False

        try:
            asyncio.run(scenario())
        finally:
            index.close()
        assert engine.index_swaps == 0
        assert (
            metrics.counter_value("repro_serve_index_reloads_total")
            == 0
        )

    def test_bad_interval_rejected(self, tmp_path):
        write_serve_store(tmp_path, per_segment=10, segments=1)
        index = ensure_serving_index(tmp_path)
        try:
            engine = CoalescingEngine(index)
            with pytest.raises(ValueError, match="interval"):
                IndexReloader(engine, tmp_path, interval=0)
        finally:
            index.close()


class TestApiConnectReload:
    def test_local_client_follows_commits(self, tmp_path):
        store = write_serve_store(tmp_path, per_segment=20, segments=1)

        async def scenario():
            client = await api.connect(
                tmp_path, reload_interval=0.03
            )
            async with client:
                fresh = _commit_segment(store, 9)
                deadline = (
                    asyncio.get_running_loop().time() + RELOAD_DEADLINE
                )
                while not all(
                    await client.contains_batch(fresh)
                ):
                    assert (
                        asyncio.get_running_loop().time() < deadline
                    ), "commit never became visible"
                    await asyncio.sleep(0.02)
            client.engine.index.close()

        asyncio.run(scenario())
