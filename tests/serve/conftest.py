"""Shared fixtures for serving-layer tests.

One deterministic segmented corpus (several segments, duplicates across
segment boundaries, EUI-64 and structured and random IIDs), a routing
table with genuinely nested announcements (a covering /32, more-specific
/48 and /64, and a longer-than-/64 /80), and the in-process ground
truth every serving answer is pinned against: :class:`CorpusIndex`
built from the folded corpus plus :meth:`RoutingTable.origin_asn`.
"""

import random

import pytest

from repro.addr.eui64 import mac_to_iid
from repro.addr.ipv6 import with_iid
from repro.core.corpus import AddressCorpus
from repro.core.index import CorpusIndex
from repro.core.segments import SegmentStore, SegmentedCorpusReader
from repro.net.prefixes import Prefix
from repro.net.routing import RoutingTable

BLOCKS = [(0x2001 << 112) | (block << 96) for block in range(1, 4)]
MACS = [0x0011_22_00_00_00 + n for n in range(6)]


def _make_events(seed=7, per_segment=120, segments=3):
    """Deterministic sightings: (address, when) lists, one per segment."""
    rng = random.Random(seed)
    out = []
    for seg in range(segments):
        events = []
        for _ in range(per_segment):
            block = rng.choice(BLOCKS)
            prefix = block | (rng.randrange(4) << 80) | (
                rng.randrange(3) << 64
            )
            kind = rng.randrange(4)
            if kind == 0:
                iid = mac_to_iid(rng.choice(MACS))
            elif kind == 1:
                iid = rng.randrange(0x100)  # low / structured
            elif kind == 2:
                iid = 0
            else:
                iid = rng.randrange(1 << 64)  # high-entropy
            when = seg * 7 * 86400.0 + rng.randrange(7 * 86400)
            events.append((with_iid(prefix, iid), when))
        out.append(events)
    return out


def write_serve_store(directory, seed=7, per_segment=120, segments=3):
    """Seal a deterministic multi-segment store under ``directory``."""
    store = SegmentStore(directory, name="serve")
    metas = []
    for number, events in enumerate(
        _make_events(seed, per_segment, segments)
    ):
        corpus = AddressCorpus("serve")
        for address, when in events:
            corpus.record(address, when)
        metas.append(
            store.write_segment(
                corpus,
                segment_id=f"seg-{number:03d}",
                start_day=number * 7,
                end_day=(number + 1) * 7,
            )
        )
    store.commit(metas, completed_weeks=segments)
    return store


def make_routing():
    """Nested announcements exercising real LPM resolution."""
    table = RoutingTable()
    base = 0x2001 << 112
    # Covering /32 over all of 2001:0001::/32 .. 2001:0003::/32.
    table.announce(Prefix(base | (1 << 96), 32), 64500)
    table.announce(Prefix(base | (2 << 96), 32), 64501)
    # More-specific /48 inside block 1.
    table.announce(Prefix(base | (1 << 96) | (2 << 80), 48), 64510)
    # More-specific /64 inside that /48.
    table.announce(
        Prefix(base | (1 << 96) | (2 << 80) | (1 << 64), 64), 64511
    )
    # Longer-than-/64 announcement (an /80) inside block 2.
    table.announce(
        Prefix(base | (2 << 96) | (3 << 80) | (2 << 64), 80), 64520
    )
    # Block 3 stays unannounced: origin queries there return None.
    return table


def query_addresses(corpus_addresses):
    """Every corpus address plus misses of every interesting shape."""
    present = sorted(corpus_addresses)
    base = 0x2001 << 112
    absent = [
        0,
        (1 << 128) - 1,
        base,  # routed-ish but not in the corpus
        present[0] ^ 1,  # same /64, different IID (usually absent)
        base | (9 << 96),  # absent /48 and /64
        base | (2 << 96) | (3 << 80) | (2 << 64) | 5,  # inside the /80
    ]
    queries = present + [a for a in absent if a not in set(present)]
    return queries


@pytest.fixture(scope="module")
def serve_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("serve-store")
    write_serve_store(directory)
    return directory


@pytest.fixture(scope="module")
def routing():
    return make_routing()


@pytest.fixture(scope="module")
def ground_truth(serve_dir):
    """Cold-built CorpusIndex over the folded corpus (the oracle)."""
    corpus = SegmentedCorpusReader.open(serve_dir).load()
    return CorpusIndex.build(corpus)


@pytest.fixture(scope="module")
def queries(ground_truth):
    return query_addresses(ground_truth.addresses)
