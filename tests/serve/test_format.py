"""The ``RSI1`` serving index: round-trip fidelity and failure model.

Pinned contracts:

* **serving == in-process** — every batch query answers bit-identically
  to a cold :class:`CorpusIndex` over the folded corpus plus
  :meth:`RoutingTable.origin_asn`, on both the numpy and the portable
  kernel paths.
* **torn is never served** — any flipped byte, truncation or missing
  footer fails the whole-file CRC at open; :func:`ensure_serving_index`
  then rebuilds from the ``.idx`` partials, including after a SIGKILL
  mid-(non-atomic)-write, and the real builder's atomic replace means a
  SIGKILL during *its* write can never tear the published file.
* **zero-copy** — with every sealed ``.seg`` deleted, the index still
  opens and answers identically: queries touch only ``SERVING.rsi``.
"""

import os
import signal
import subprocess
import sys

import pytest

import repro.core.kernels as kernels
from repro.core.kernels import NO_MAC
from repro.core.segments import SegmentStore
from repro.net.prefixes import Prefix
from repro.net.routing import RoutingTable
from repro.obs import MetricsRegistry
from repro.serve import (
    SERVING_INDEX_NAME,
    ServingIndex,
    ServingIndexError,
    build_serving_index,
    ensure_serving_index,
    flatten_origin_table,
    manifest_digest,
)

from .conftest import write_serve_store


def oracle(gt, routing, queries):
    """Expected per-query answers from the in-process index + routing."""
    row_of = {address: row for row, address in enumerate(gt.addresses)}
    s48 = {address >> 80 for address in gt.addresses}
    s64 = {address >> 64 for address in gt.addresses}
    expected = {
        "record": [],
        "lifetime": [],
        "entropy": [],
        "features": [],
        "contains": [],
        "slash48": [],
        "slash64": [],
        "origin": [],
    }
    for query in queries:
        row = row_of.get(query)
        if row is None:
            for op in ("record", "lifetime", "entropy", "features"):
                expected[op].append(None)
        else:
            expected["record"].append(
                (gt.first[row], gt.last[row], gt.counts[row])
            )
            expected["lifetime"].append(gt.last[row] - gt.first[row])
            expected["entropy"].append(gt.entropies[row])
            mac = gt.macs[row]
            expected["features"].append(
                (
                    gt.entropies[row],
                    gt.pattern_codes[row],
                    None if mac == NO_MAC else mac,
                )
            )
        expected["contains"].append(row is not None)
        expected["slash48"].append(query >> 80 in s48)
        expected["slash64"].append(query >> 64 in s64)
        expected["origin"].append(routing.origin_asn(query))
    return expected


def assert_index_matches(index, gt, routing, queries):
    expected = oracle(gt, routing, queries)
    assert index.record_batch(queries) == expected["record"]
    assert index.lifetime_batch(queries) == expected["lifetime"]
    assert index.entropy_batch(queries) == expected["entropy"]
    assert index.features_batch(queries) == expected["features"]
    assert index.contains_batch(queries) == expected["contains"]
    assert index.slash48_batch(queries) == expected["slash48"]
    assert index.slash64_batch(queries) == expected["slash64"]
    assert index.origin_batch(queries) == expected["origin"]


class TestRoundTrip:
    def test_serving_answers_equal_in_process_index(
        self, serve_dir, ground_truth, routing, queries
    ):
        build_serving_index(serve_dir, routing=routing)
        with ServingIndex.open(serve_dir) as index:
            assert_index_matches(index, ground_truth, routing, queries)

    def test_header_and_describe_shape(
        self, serve_dir, ground_truth, routing
    ):
        build_serving_index(serve_dir, routing=routing)
        with ServingIndex.open(serve_dir) as index:
            assert index.rows == len(ground_truth.addresses)
            assert index.slash48_count == len(
                {a >> 80 for a in ground_truth.addresses}
            )
            assert index.slash64_count == len(
                {a >> 64 for a in ground_truth.addresses}
            )
            assert index.has_origin_table
            info = index.describe()
            assert info["rows"] == index.rows
            assert info["has_origin_table"] is True
            assert info["generation"] == index.generation
            assert info["path"].endswith(SERVING_INDEX_NAME)

    def test_small_batches_use_the_scalar_path(
        self, serve_dir, ground_truth, routing, queries
    ):
        """One- and two-query batches answer identically to big ones."""
        build_serving_index(serve_dir, routing=routing)
        expected = oracle(ground_truth, routing, queries)
        with ServingIndex.open(serve_dir) as index:
            for i, query in enumerate(queries[:24]):
                assert index.record_batch([query]) == [
                    expected["record"][i]
                ]
                assert index.origin_batch([query]) == [
                    expected["origin"][i]
                ]

    def test_portable_fallback_equals_numpy(
        self, serve_dir, ground_truth, routing, queries, monkeypatch
    ):
        if kernels._np is None:
            pytest.skip("numpy unavailable; only one path to compare")
        build_serving_index(serve_dir, routing=routing)
        monkeypatch.setattr(kernels, "_np", None)
        with ServingIndex.open(serve_dir) as index:
            assert not index._numpy
            assert_index_matches(index, ground_truth, routing, queries)

    def test_bad_addresses_rejected(self, serve_dir, routing):
        build_serving_index(serve_dir, routing=routing)
        with ServingIndex.open(serve_dir) as index:
            with pytest.raises(ValueError, match="out of range"):
                index.contains_batch([-1])
            with pytest.raises(ValueError, match="out of range"):
                index.contains_batch([1 << 128])
            with pytest.raises(ValueError, match="ints"):
                index.contains_batch(["2001::1"])

    def test_empty_store_serves_all_misses(self, tmp_path):
        store = SegmentStore(tmp_path, name="empty")
        store.commit([], completed_weeks=0)
        build_serving_index(tmp_path)
        with ServingIndex.open(tmp_path) as index:
            assert index.rows == 0
            assert index.record_batch([0, 1, 1 << 100]) == [
                None,
                None,
                None,
            ]
            assert index.contains_batch([5]) == [False]
            assert index.slash64_batch([5]) == [False]

    def test_origin_without_table_raises(self, tmp_path):
        write_serve_store(tmp_path, per_segment=10, segments=1)
        build_serving_index(tmp_path)
        with ServingIndex.open(tmp_path) as index:
            assert not index.has_origin_table
            with pytest.raises(ServingIndexError, match="origin table"):
                index.origin_batch([1])


class TestFlattenedOrigins:
    def test_matches_trie_over_dense_probes(self, routing):
        starts_hi, starts_lo, asns = flatten_origin_table(
            routing.routed_prefixes()
        )
        assert starts_hi[0] == 0 and starts_lo[0] == 0
        # Starts strictly increase; runs of equal ASN are merged.
        starts = [
            (hi << 64) | lo for hi, lo in zip(starts_hi, starts_lo)
        ]
        assert starts == sorted(set(starts))
        assert all(a != b for a, b in zip(asns, asns[1:]))
        # Probe densely around every interval boundary.
        probes = set()
        for start in starts:
            for delta in (-2, -1, 0, 1, 2):
                if 0 <= start + delta < (1 << 128):
                    probes.add(start + delta)
        import bisect

        for probe in sorted(probes):
            position = bisect.bisect_right(starts, probe) - 1
            flat = asns[position] or None
            assert flat == routing.origin_asn(probe), hex(probe)

    def test_nested_and_sibling_prefixes(self):
        table = RoutingTable()
        base = 0x2001 << 112
        table.announce(Prefix(base, 16), 1)
        table.announce(Prefix(base, 32), 2)  # same start, longer
        table.announce(Prefix(base | (5 << 80), 48), 3)  # nested
        starts_hi, starts_lo, asns = flatten_origin_table(
            table.routed_prefixes()
        )
        starts = [
            (hi << 64) | lo for hi, lo in zip(starts_hi, starts_lo)
        ]
        import bisect

        for probe, want in [
            (0, None),
            (base, 2),  # most specific same-start wins
            (base | (5 << 80), 3),
            (base | (5 << 80) + (1 << 80) - 1, 3),
            (base | (6 << 80), 2),  # back to the /32
            (base + (1 << 96), 1),  # past the /32, inside the /16
            (base + (1 << 112), None),  # past everything
        ]:
            position = bisect.bisect_right(starts, probe) - 1
            assert (asns[position] or None) == want, hex(probe)


class TestFailureModel:
    def test_flipped_byte_detected(self, tmp_path, routing):
        write_serve_store(tmp_path, per_segment=20, segments=2)
        path = build_serving_index(tmp_path, routing=routing)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(ServingIndexError, match="CRC"):
            ServingIndex.open(tmp_path)

    def test_truncation_detected(self, tmp_path, routing):
        write_serve_store(tmp_path, per_segment=20, segments=2)
        path = build_serving_index(tmp_path, routing=routing)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 5])
        with pytest.raises(ServingIndexError):
            ServingIndex.open(tmp_path)

    def test_stub_file_detected(self, tmp_path):
        write_serve_store(tmp_path, per_segment=5, segments=1)
        (tmp_path / SERVING_INDEX_NAME).write_bytes(b"RSI1")
        with pytest.raises(ServingIndexError, match="truncated"):
            ServingIndex.open(tmp_path)

    def test_bad_magic_detected(self, tmp_path, routing):
        write_serve_store(tmp_path, per_segment=5, segments=1)
        path = build_serving_index(tmp_path, routing=routing)
        data = bytearray(path.read_bytes())
        data[:4] = b"NOPE"
        path.write_bytes(bytes(data))
        with pytest.raises(ServingIndexError, match="magic"):
            ServingIndex.open(tmp_path)

    def test_missing_index_is_file_not_found(self, tmp_path):
        write_serve_store(tmp_path, per_segment=5, segments=1)
        with pytest.raises(FileNotFoundError):
            ServingIndex.open(tmp_path)

    def test_torn_index_rebuilt_never_served(self, tmp_path, routing):
        """A torn file is refused, then transparently rebuilt."""
        write_serve_store(tmp_path, per_segment=30, segments=2)
        metrics = MetricsRegistry()
        path = build_serving_index(tmp_path, routing=routing)
        good = path.read_bytes()
        path.write_bytes(good[: len(good) // 2])
        index = ensure_serving_index(
            tmp_path, routing=routing, metrics=metrics
        )
        try:
            assert (
                metrics.counter_value(
                    "repro_serve_index_rebuilds_total",
                    labels={"reason": "torn"},
                )
                == 1
            )
            # The rebuilt file round-trips and carried the generation on.
            assert index.generation >= 2
            assert index.contains_batch([0]) == [False]
        finally:
            index.close()


CRASH_COPY_SCRIPT = """
import os, signal, sys
from repro.serve import build_serving_index

directory, cut = sys.argv[1], int(sys.argv[2])
path = build_serving_index(directory)
data = path.read_bytes()
# A non-atomic copier (rsync --inplace, cp) dying mid-copy: write the
# first `cut` bytes straight over the published file, then SIGKILL.
with open(path, "wb") as stream:
    stream.write(data[:cut])
    stream.flush()
    os.fsync(stream.fileno())
    os.kill(os.getpid(), signal.SIGKILL)
"""

CRASH_BUILD_SCRIPT = """
import os, signal, sys
import repro.core.segments as segments
from repro.serve import build_serving_index

directory = sys.argv[1]

real_atomic = segments.SegmentStore._atomic_write

def dying_atomic(self, path, data):
    # Die inside the temp-file write, before os.replace: the crash
    # window of the real builder.
    with open(str(path) + ".tmp-crash", "wb") as stream:
        stream.write(data[: len(data) // 2])
        stream.flush()
        os.fsync(stream.fileno())
    os.kill(os.getpid(), signal.SIGKILL)

segments.SegmentStore._atomic_write = dying_atomic
build_serving_index(directory)
"""


class TestCrashSafety:
    @pytest.mark.parametrize("cut_fraction", [0.2, 0.6, 0.95])
    def test_sigkill_mid_copy_leaves_detectable_tear(
        self, tmp_path, routing, cut_fraction
    ):
        write_serve_store(tmp_path, per_segment=40, segments=2)
        probe = build_serving_index(tmp_path)
        cut = int(len(probe.read_bytes()) * cut_fraction)
        probe.unlink()
        process = subprocess.run(
            [
                sys.executable,
                "-c",
                CRASH_COPY_SCRIPT,
                str(tmp_path),
                str(cut),
            ],
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=os.path.dirname(
                os.path.dirname(os.path.dirname(__file__))
            ),
            timeout=120,
        )
        assert process.returncode == -signal.SIGKILL
        # The tear is detected, never served...
        with pytest.raises(ServingIndexError):
            ServingIndex.open(tmp_path)
        # ...and ensure_serving_index rebuilds from the .idx partials.
        metrics = MetricsRegistry()
        index = ensure_serving_index(
            tmp_path, routing=routing, metrics=metrics
        )
        try:
            assert metrics.counter_value(
                "repro_serve_index_rebuilds_total",
                labels={"reason": "torn"},
            ) == 1
            assert index.has_origin_table
            assert index.rows > 0
        finally:
            index.close()

    def test_sigkill_inside_the_builder_cannot_tear(
        self, tmp_path, routing
    ):
        """The atomic replace means the published file is old or new,
        never half-written."""
        write_serve_store(tmp_path, per_segment=40, segments=2)
        build_serving_index(tmp_path, routing=routing)
        before = (tmp_path / SERVING_INDEX_NAME).read_bytes()
        process = subprocess.run(
            [sys.executable, "-c", CRASH_BUILD_SCRIPT, str(tmp_path)],
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=os.path.dirname(
                os.path.dirname(os.path.dirname(__file__))
            ),
            timeout=120,
        )
        assert process.returncode == -signal.SIGKILL
        # The published index is untouched and still validates.
        assert (tmp_path / SERVING_INDEX_NAME).read_bytes() == before
        ServingIndex.open(tmp_path).close()


class TestEnsure:
    def test_reuse_then_stale_after_commit(
        self, tmp_path, ground_truth, routing
    ):
        store = write_serve_store(tmp_path, per_segment=30, segments=2)
        metrics = MetricsRegistry()
        first = ensure_serving_index(
            tmp_path, routing=routing, metrics=metrics
        )
        generation = first.generation
        digest = first.source_digest
        first.close()
        assert (
            metrics.counter_value(
                "repro_serve_index_rebuilds_total",
                labels={"reason": "missing"},
            )
            == 1
        )

        second = ensure_serving_index(
            tmp_path, routing=routing, metrics=metrics
        )
        assert second.generation == generation  # reused, not rebuilt
        second.close()
        assert (
            metrics.counter_value("repro_serve_index_reused_total") == 1
        )

        # A new committed segment changes the manifest digest: stale.
        from repro.core.corpus import AddressCorpus

        extra = AddressCorpus("serve")
        new_address = (0x2001 << 112) | (3 << 96) | 0xABCDEF
        extra.record(new_address, 42.0)
        meta = store.write_segment(
            extra, segment_id="seg-extra", start_day=14, end_day=21
        )
        store.commit([meta], completed_weeks=3)
        assert manifest_digest(store.load_manifest()) != digest

        third = ensure_serving_index(
            tmp_path, routing=routing, metrics=metrics
        )
        try:
            assert third.generation == generation + 1
            assert (
                metrics.counter_value(
                    "repro_serve_index_rebuilds_total",
                    labels={"reason": "stale"},
                )
                == 1
            )
            assert third.contains_batch([new_address]) == [True]
        finally:
            third.close()

    def test_rebuild_when_routing_demands_origin_table(
        self, tmp_path, routing
    ):
        write_serve_store(tmp_path, per_segment=10, segments=1)
        metrics = MetricsRegistry()
        bare = ensure_serving_index(tmp_path, metrics=metrics)
        assert not bare.has_origin_table
        bare.close()
        upgraded = ensure_serving_index(
            tmp_path, routing=routing, metrics=metrics
        )
        try:
            assert upgraded.has_origin_table
            assert (
                metrics.counter_value(
                    "repro_serve_index_rebuilds_total",
                    labels={"reason": "no-origin-table"},
                )
                == 1
            )
        finally:
            upgraded.close()

    def test_forced_rebuild(self, tmp_path):
        write_serve_store(tmp_path, per_segment=10, segments=1)
        first = ensure_serving_index(tmp_path)
        generation = first.generation
        first.close()
        second = ensure_serving_index(tmp_path, rebuild=True)
        try:
            assert second.generation == generation + 1
        finally:
            second.close()

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="MANIFEST"):
            ensure_serving_index(tmp_path)


class TestZeroCopy:
    def test_queries_survive_segment_deletion(
        self, tmp_path, routing
    ):
        """Proof the serving path reads no sealed ``.seg`` payload."""
        write_serve_store(tmp_path, per_segment=60, segments=3)
        from repro.core.index import CorpusIndex
        from repro.core.segments import SegmentedCorpusReader

        gt = CorpusIndex.build(
            SegmentedCorpusReader.open(tmp_path).load()
        )
        queries = sorted(gt.addresses) + [0, (1 << 128) - 1]
        build_serving_index(tmp_path, routing=routing)

        removed = 0
        for segment in tmp_path.glob("*.seg"):
            segment.unlink()
            removed += 1
        assert removed > 0

        with ServingIndex.open(tmp_path) as index:
            assert_index_matches(index, gt, routing, queries)
