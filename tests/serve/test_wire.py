"""The RSB1 wire protocol: codec, negotiation, interop, and fuzz.

Three pinned contracts:

* **Codec** — every reply family round-trips bit-identically (None,
  sentinel MACs, absent ASNs, empty batches included), and op codes are
  wire ABI frozen by value.
* **Interop** — every protocol pairing works: binary↔binary, json↔json,
  a binary client downgrading against a ``--json-only`` server and
  against a simulated *old* (pre-RSB1) server, all returning the same
  answers as the JSON path.
* **Fuzz** — truncated, bit-flipped, and oversized frames always raise
  a *typed* :class:`WireError`, bounded in time (no hang) and in memory
  (length validated before any payload read).
"""

import asyncio
import contextlib
import json

import pytest

from repro import api
from repro.core import kernels as _kernels
from repro.serve import (
    CoalescingEngine,
    ColumnarResults,
    HitlistServer,
    RemoteHitlistClient,
    ServingIndex,
    build_serving_index,
)
from repro.serve import wire
from repro.serve.wire import (
    AddressBlock,
    FRAME_HEADER_SIZE,
    FrameCorruptError,
    FrameTooLargeError,
    KIND_REPLY,
    KIND_REQUEST,
    PROTOCOL_BINARY,
    PROTOCOL_JSON,
    QUERY_OP_TABLE,
    WireError,
    WireProtocolError,
    resolve_op,
)

from .test_format import oracle


@pytest.fixture(scope="module")
def served_index(serve_dir, routing):
    build_serving_index(serve_dir, routing=routing)
    with ServingIndex.open(serve_dir) as index:
        yield index


def run(coroutine):
    return asyncio.run(coroutine)


def feed(*chunks, eof=True):
    """A StreamReader pre-loaded with bytes (and optionally EOF)."""
    reader = asyncio.StreamReader()
    for chunk in chunks:
        reader.feed_data(chunk)
    if eof:
        reader.feed_eof()
    return reader


async def read_one(data, **kwargs):
    """Read a single frame from raw bytes, bounded to prove no hang."""
    return await asyncio.wait_for(
        wire.read_frame(feed(data), **kwargs), timeout=10
    )


class TestRegistry:
    def test_op_codes_are_frozen_wire_abi(self):
        # Codes are ABI: a renumber breaks every deployed peer.  Pin
        # them by value, not by table order.
        assert {spec.name: spec.code for spec in QUERY_OP_TABLE} == {
            "record": 1,
            "lifetime": 2,
            "entropy": 3,
            "features": 4,
            "origin": 5,
            "contains": 6,
            "slash48": 7,
            "slash64": 8,
            "stats": 15,
        }
        assert all(spec.code != 0 for spec in QUERY_OP_TABLE)

    def test_resolve_accepts_spec_code_and_name(self):
        spec = resolve_op("contains")
        assert resolve_op(spec.code) is spec
        assert resolve_op(spec) is spec
        with pytest.raises(ValueError, match="unknown query op"):
            resolve_op("frobnicate")
        with pytest.raises(ValueError, match="unknown query op"):
            resolve_op(0)
        # bools are not op codes, even though bool is an int subclass.
        with pytest.raises(ValueError, match="unknown query op"):
            resolve_op(True)

    def test_surface_names(self):
        assert resolve_op("slash48").surface == "in_slash48"
        assert resolve_op("slash64").surface == "in_slash64"
        assert resolve_op("stats").addressed is False


class TestAddressBlock:
    ADDRESSES = [
        0,
        1,
        (1 << 128) - 1,
        (0x2001 << 112) | (1 << 64) | 7,
        (1 << 64) - 1,  # hi == 0, lo == max
        1 << 64,  # hi == 1, lo == 0
    ]

    def test_payload_round_trip(self):
        payload = b"".join(
            address.to_bytes(16, "little") for address in self.ADDRESSES
        )
        block = AddressBlock.from_payload(payload, len(self.ADDRESSES))
        assert list(block) == self.ADDRESSES
        assert len(block) == len(self.ADDRESSES)
        assert block[2] == (1 << 128) - 1
        assert list(block[1:3]) == self.ADDRESSES[1:3]

    def test_from_addresses_matches(self):
        block = AddressBlock.from_addresses(self.ADDRESSES)
        assert list(block) == self.ADDRESSES

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="address payload"):
            AddressBlock.from_payload(b"\x00" * 17, 1)


REPLY_CASES = [
    ("contains", [True, False, True]),
    ("contains", []),
    ("lifetime", [0.0, None, 86400.5, -0.0]),
    ("entropy", [None, 0.25, 1.0]),
    ("record", [(1.5, 2.5, 3), None, (0.0, 0.0, 1)]),
    ("features", [(0.5, 2, 0x0011_22_33_44_55), (1.0, 7, None), None]),
    ("origin", [64500, None, 4_294_967_295]),
    ("stats", [{"rows": 10, "coalesce": True, "origin_source": None}]),
]


class TestReplyCodec:
    @pytest.mark.parametrize("op,results", REPLY_CASES)
    def test_round_trip_bit_identical(self, op, results):
        spec = resolve_op(op)
        data = wire.encode_reply(spec, 42, results)

        async def scenario():
            frame = await read_one(data)
            kind, opcode, request_id, count, payload = frame
            assert (kind, opcode, request_id) == (
                KIND_REPLY, spec.code, 42,
            )
            assert count == len(results)
            return wire.decode_results(spec, count, payload)

        assert run(scenario()) == results

    def test_request_round_trip(self):
        spec = resolve_op("record")
        addresses = TestAddressBlock.ADDRESSES
        data = wire.encode_request(spec, 9, addresses)

        async def scenario():
            kind, opcode, request_id, count, payload = await read_one(
                data
            )
            assert (kind, opcode, request_id) == (
                KIND_REQUEST, spec.code, 9,
            )
            decoded_spec, block = wire.decode_request(
                opcode, count, payload
            )
            assert decoded_spec is spec
            return list(block)

        assert run(scenario()) == addresses

    def test_request_validation_matches_json_wording(self):
        spec = resolve_op("contains")
        with pytest.raises(ValueError, match="addresses must be ints"):
            wire.encode_request(spec, 1, ["2001::1"])
        with pytest.raises(ValueError, match="address out of range"):
            wire.encode_request(spec, 1, [1 << 128])
        with pytest.raises(FrameTooLargeError):
            wire.encode_request(
                spec, 1, [0] * 1024, max_frame_bytes=4096
            )

    def test_reply_payload_size_is_validated(self):
        # A CRC-valid frame whose payload disagrees with its count is
        # corrupt, not silently mis-sliced.
        spec = resolve_op("lifetime")
        with pytest.raises(FrameCorruptError, match="reply payload"):
            wire.decode_results(spec, 3, b"\x00" * 5)

    def test_error_frame_round_trip(self):
        data = wire.encode_error(7, FrameTooLargeError.number, "too big")

        async def scenario():
            kind, _, request_id, _, payload = await read_one(data)
            assert kind == wire.KIND_ERROR
            assert request_id == 7
            return wire.decode_error(payload)

        number, message = run(scenario())
        assert message == "too big"
        assert isinstance(
            wire.error_for(number, message), FrameTooLargeError
        )


class TestFrameFuzz:
    FRAME = wire.encode_reply(
        resolve_op("lifetime"), 3, [1.5, None, 2.5]
    )

    def test_clean_eof_returns_none(self):
        async def scenario():
            return await asyncio.wait_for(
                wire.read_frame(feed(b"")), timeout=10
            )

        assert run(scenario()) is None

    def test_truncation_at_every_length(self):
        # Cutting the frame anywhere — mid-header, mid-payload, mid-
        # trailer — must raise typed corruption, never hang or return.
        async def scenario():
            for cut in range(1, len(self.FRAME)):
                with pytest.raises(FrameCorruptError):
                    await read_one(self.FRAME[:cut])

        run(scenario())

    def test_every_single_bit_flip_is_detected(self):
        # Magic and version checks catch the first bytes; the CRC
        # catches everything else, including flips inside count /
        # payload_bytes that still parse.  A flip that inflates
        # payload_bytes hits the frame bound or EOF instead — every
        # path is a typed WireError.
        async def scenario():
            for position in range(len(self.FRAME)):
                for bit in range(8):
                    mutated = bytearray(self.FRAME)
                    mutated[position] ^= 1 << bit
                    with pytest.raises(WireError):
                        await read_one(bytes(mutated))

        run(scenario())

    def test_oversized_length_rejected_before_payload_read(self):
        # payload_bytes over the bound: rejected from the header alone.
        # No payload bytes are fed, so completing at all proves the
        # reader never tried to buffer the advertised 16 MiB.
        header = wire._FRAME_HEADER.pack(
            wire.WIRE_MAGIC, wire.WIRE_VERSION, KIND_REPLY, 2, 1, 0,
            16 * 1024 * 1024,
        )

        async def scenario():
            reader = feed(header, eof=False)
            with pytest.raises(FrameTooLargeError):
                await asyncio.wait_for(
                    wire.read_frame(reader, max_frame_bytes=4096),
                    timeout=10,
                )

        run(scenario())

    def test_wrong_version_and_kind_are_protocol_errors(self):
        def header(version=wire.WIRE_VERSION, kind=KIND_REPLY):
            head = wire._FRAME_HEADER.pack(
                wire.WIRE_MAGIC, version, kind, 2, 1, 0, 0
            )
            return head + wire._TRAILER.pack(wire.crc32_of(head))

        async def scenario():
            with pytest.raises(
                WireProtocolError, match="unsupported wire version"
            ):
                await read_one(header(version=9))
            with pytest.raises(
                WireProtocolError, match="unknown frame kind"
            ):
                await read_one(header(kind=7))
            with pytest.raises(FrameCorruptError, match="magic"):
                await read_one(b"NOPE" + header()[4:])

        run(scenario())


async def _server(index, **kwargs):
    engine = CoalescingEngine(index)
    server = HitlistServer(engine, **kwargs)
    await server.start()
    return server


class TestNegotiation:
    def test_binary_client_binary_server(self, served_index, queries):
        async def scenario():
            server = await _server(served_index)
            try:
                client = await RemoteHitlistClient.connect(
                    server.host, server.port
                )
                async with client:
                    assert client.protocol == PROTOCOL_BINARY
                    assert await client.contains(queries[0]) is True
            finally:
                await server.aclose()

        run(scenario())

    def test_binary_client_downgrades_against_json_only_server(
        self, served_index, queries
    ):
        async def scenario():
            server = await _server(served_index, binary=False)
            try:
                client = await RemoteHitlistClient.connect(
                    server.host, server.port, protocol=PROTOCOL_BINARY
                )
                async with client:
                    assert client.protocol == PROTOCOL_JSON
                    assert await client.contains(queries[0]) is True
                    assert await client.contains(0) is False
            finally:
                await server.aclose()

        run(scenario())

    def test_binary_client_downgrades_against_old_server(self, queries):
        # A pre-RSB1 server answers the hello like any unknown op: a
        # *correlated* error reply.  The client must downgrade to JSON
        # on the same connection, not fail.
        async def old_server(reader, writer):
            while True:
                line = await reader.readline()
                if not line:
                    break
                request = json.loads(line)
                if request.get("op") == "contains":
                    reply = {
                        "id": request["id"],
                        "results": [True] * len(request["args"]),
                    }
                else:
                    reply = {
                        "id": request.get("id"),
                        "error": f"unknown query op "
                                 f"{request.get('op')!r}",
                    }
                writer.write((json.dumps(reply) + "\n").encode())
                await writer.drain()
            writer.close()

        async def scenario():
            server = await asyncio.start_server(
                old_server, "127.0.0.1", 0
            )
            host, port = server.sockets[0].getsockname()[:2]
            try:
                client = await RemoteHitlistClient.connect(host, port)
                async with client:
                    assert client.protocol == PROTOCOL_JSON
                    assert await client.contains(queries[0]) is True
            finally:
                server.close()
                await server.wait_closed()

        run(scenario())

    def test_json_client_skips_handshake(self, served_index, queries):
        async def scenario():
            server = await _server(served_index)
            try:
                client = await RemoteHitlistClient.connect(
                    server.host, server.port, protocol=PROTOCOL_JSON
                )
                async with client:
                    assert client.protocol == PROTOCOL_JSON
                    assert await client.contains(queries[0]) is True
            finally:
                await server.aclose()

        run(scenario())

    def test_raw_json_lines_still_served_verbatim(self, served_index):
        # The old client's exact bytes — no hello — keep working.
        async def scenario():
            server = await _server(served_index)
            try:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                writer.write(
                    b'{"id": 1, "op": "contains", "args": [0]}\n'
                )
                await writer.drain()
                reply = json.loads(await reader.readline())
                assert reply == {"id": 1, "results": [False]}
                writer.close()
                await writer.wait_closed()
            finally:
                await server.aclose()

        run(scenario())

    def test_rejected_protocol_value(self):
        async def scenario():
            with pytest.raises(ValueError, match="protocol must be"):
                await RemoteHitlistClient.connect(
                    "127.0.0.1", 1, protocol="msgpack"
                )

        run(scenario())


class TestInteropAnswers:
    def test_both_protocols_answer_bit_identically(
        self, served_index, ground_truth, routing, queries
    ):
        """The tentpole's ground-truth gate, in-process: every op, every
        query, byte-for-byte equal across binary and JSON clients, both
        equal to the in-process oracle."""
        expected = oracle(ground_truth, routing, queries)

        async def scenario():
            server = await _server(served_index)
            try:
                binary = await RemoteHitlistClient.connect(
                    server.host, server.port, protocol=PROTOCOL_BINARY
                )
                jsonl = await RemoteHitlistClient.connect(
                    server.host, server.port, protocol=PROTOCOL_JSON
                )
                assert binary.protocol == PROTOCOL_BINARY
                try:
                    for op, method in [
                        ("record", "record_batch"),
                        ("lifetime", "lifetime_batch"),
                        ("entropy", "entropy_batch"),
                        ("features", "features_batch"),
                        ("origin", "origin_batch"),
                        ("contains", "contains_batch"),
                        ("slash48", "in_slash48_batch"),
                        ("slash64", "in_slash64_batch"),
                    ]:
                        b = await getattr(binary, method)(queries)
                        j = await getattr(jsonl, method)(queries)
                        assert b == j, op
                        assert b == expected[op], op
                    assert (await binary.stats())["rows"] == (
                        await jsonl.stats()
                    )["rows"]
                finally:
                    await binary.aclose()
                    await jsonl.aclose()
            finally:
                await server.aclose()

        run(scenario())

    def test_unknown_op_is_request_scoped_on_binary(
        self, served_index, queries
    ):
        # Same contract as the JSON path: the op the registry cannot
        # resolve goes out as reserved code 0, the server rejects that
        # request, and the connection keeps serving.
        async def scenario():
            server = await _server(served_index)
            try:
                client = await RemoteHitlistClient.connect(
                    server.host, server.port
                )
                async with client:
                    assert client.protocol == PROTOCOL_BINARY
                    with pytest.raises(
                        RuntimeError, match="server error"
                    ):
                        await client._request("frobnicate", [1])
                    assert await client.contains(queries[0]) is True
            finally:
                await server.aclose()

        run(scenario())

    def test_pipelined_binary_requests_coalesce(
        self, served_index, queries
    ):
        async def scenario():
            server = await _server(served_index)
            engine = server.engine
            try:
                client = await RemoteHitlistClient.connect(
                    server.host, server.port
                )
                async with client:
                    answers = await asyncio.gather(
                        *(
                            client.lifetime(query)
                            for query in queries[:48]
                        )
                    )
                    direct = await engine.batch(
                        "lifetime", queries[:48]
                    )
                    assert answers == direct
                    assert engine.batches_executed < 48
            finally:
                await server.aclose()

        run(scenario())


class TestFrameBounds:
    def test_oversized_json_line_gets_typed_error(self, served_index):
        # Satellite (c): a request line over --max-frame-bytes used to
        # surface as an unhandled LimitOverrunError; now it's answered
        # with a typed error and a close, and the client raises
        # FrameTooLargeError rather than a bare EOF.
        async def scenario():
            server = await _server(served_index, max_frame_bytes=4096)
            try:
                client = await RemoteHitlistClient.connect(
                    server.host, server.port, protocol=PROTOCOL_JSON
                )
                with pytest.raises(FrameTooLargeError):
                    await asyncio.wait_for(
                        client.contains_batch(list(range(4096))),
                        timeout=30,
                    )
                await client.aclose()
            finally:
                await server.aclose()

        run(scenario())

    def test_oversized_binary_frame_gets_typed_error(
        self, served_index
    ):
        # The client's own bound is larger than the server's, so the
        # frame goes out and the *server* rejects it from the header.
        async def scenario():
            server = await _server(served_index, max_frame_bytes=4096)
            try:
                client = await RemoteHitlistClient.connect(
                    server.host, server.port
                )
                assert client.protocol == PROTOCOL_BINARY
                with pytest.raises(FrameTooLargeError):
                    await asyncio.wait_for(
                        client.contains_batch(list(range(4096))),
                        timeout=30,
                    )
                await client.aclose()
            finally:
                await server.aclose()

        run(scenario())

    def test_client_side_bound_rejects_before_send(self, served_index):
        # A batch over the *client's* bound never reaches the wire, and
        # the connection stays usable.
        async def scenario():
            server = await _server(served_index)
            try:
                client = await RemoteHitlistClient.connect(
                    server.host, server.port, max_frame_bytes=4096
                )
                async with client:
                    with pytest.raises(FrameTooLargeError):
                        await client.contains_batch(list(range(4096)))
                    assert await client.contains(0) is False
            finally:
                await server.aclose()

        run(scenario())

    def test_garbage_after_upgrade_is_fatal_and_typed(
        self, served_index
    ):
        # Raw socket: negotiate binary, then send garbage bytes.  The
        # server must answer one typed error frame and close — no hang.
        async def scenario():
            server = await _server(served_index)
            try:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                writer.write(wire.encode_hello_line())
                await writer.drain()
                hello = json.loads(await reader.readline())
                assert (
                    hello["results"][0]["protocol"] == PROTOCOL_BINARY
                )
                writer.write(b"\xde\xad\xbe\xef" * 8)
                await writer.drain()
                frame = await asyncio.wait_for(
                    wire.read_frame(reader), timeout=30
                )
                kind, _, _, _, payload = frame
                assert kind == wire.KIND_ERROR
                number, _ = wire.decode_error(payload)
                assert isinstance(
                    wire.error_for(number, ""), FrameCorruptError
                )
                assert (
                    await asyncio.wait_for(reader.read(), timeout=30)
                    == b""
                )
                writer.close()
                with contextlib.suppress(ConnectionError):
                    await writer.wait_closed()
            finally:
                await server.aclose()

        run(scenario())


class TestApiConnectUrls:
    def test_repro_url_binary_default(self, served_index, queries):
        async def scenario():
            server = await _server(served_index)
            try:
                client = await api.connect(
                    f"repro://{server.host}:{server.port}"
                )
                async with client:
                    assert isinstance(client, RemoteHitlistClient)
                    assert client.protocol == PROTOCOL_BINARY
                    assert await client.contains(queries[0]) is True
            finally:
                await server.aclose()

        run(scenario())

    def test_repro_url_protocol_param(self, served_index, queries):
        async def scenario():
            server = await _server(served_index)
            try:
                client = await api.connect(
                    f"repro://{server.host}:{server.port}"
                    "?protocol=json"
                )
                async with client:
                    assert client.protocol == PROTOCOL_JSON
                    assert await client.contains(queries[0]) is True
            finally:
                await server.aclose()

        run(scenario())

    def test_host_port_with_protocol_kwarg(self, served_index):
        async def scenario():
            server = await _server(served_index)
            try:
                client = await api.connect(
                    f"{server.host}:{server.port}", protocol="json"
                )
                async with client:
                    assert client.protocol == PROTOCOL_JSON
            finally:
                await server.aclose()

        run(scenario())

    def test_url_validation(self):
        async def scenario():
            with pytest.raises(ValueError, match="conflicts"):
                await api.connect(
                    "repro://127.0.0.1:1?protocol=json",
                    protocol="binary",
                )
            with pytest.raises(ValueError, match="unknown repro://"):
                await api.connect("repro://127.0.0.1:1?bogus=1")
            with pytest.raises(
                ValueError, match="host and port"
            ):
                await api.connect("repro://nohost")
            with pytest.raises(
                ValueError, match="only apply to remote"
            ):
                await api.connect(
                    "no-such-directory", protocol="binary"
                )

        run(scenario())


class TestColumnar:
    """The binary path's columnar lane is bit- and byte-identical.

    ``columnar_batch`` must produce exactly the values of the matching
    list path (``to_list``) and exactly the bytes of the list encoder
    (``encode_reply``) — the invariant that makes the zero-loop lane
    safe to enable unconditionally on the binary server.
    """

    OPS = [spec.name for spec in wire.ADDRESS_OPS]

    @pytest.mark.skipif(
        not _kernels.HAVE_NUMPY, reason="columnar lane needs numpy"
    )
    @pytest.mark.parametrize("op", OPS)
    def test_values_and_frame_bytes_match_list_path(
        self, served_index, queries, op
    ):
        spec = resolve_op(op)
        listed = getattr(served_index, f"{op}_batch")(queries)
        columnar = served_index.columnar_batch(op, queries)
        assert isinstance(columnar, ColumnarResults)
        assert len(columnar) == len(listed)
        assert columnar.to_list() == listed
        assert wire.encode_reply(spec, 7, columnar) == wire.encode_reply(
            spec, 7, listed
        )

    @pytest.mark.skipif(
        not _kernels.HAVE_NUMPY, reason="columnar lane needs numpy"
    )
    def test_slices_items_and_iteration(self, served_index, queries):
        columnar = served_index.columnar_batch("record", queries)
        listed = served_index.record_batch(queries)
        assert list(columnar) == listed
        assert columnar[3] == listed[3]
        piece = columnar[2:9]
        assert isinstance(piece, ColumnarResults)
        assert piece.to_list() == listed[2:9]

    @pytest.mark.skipif(
        not _kernels.HAVE_NUMPY, reason="columnar lane needs numpy"
    )
    def test_address_block_concat_feeds_columnar(
        self, served_index, queries
    ):
        payload = b"".join(a.to_bytes(16, "little") for a in queries)
        block = AddressBlock.from_payload(payload, len(queries))
        half = len(queries) // 2
        merged = AddressBlock.concat([block[:half], block[half:]])
        assert list(merged) == queries
        columnar = served_index.columnar_batch("contains", merged)
        assert columnar.to_list() == served_index.contains_batch(queries)

    def test_empty_batch_falls_back(self, served_index):
        assert served_index.columnar_batch("record", []) is None

    def test_engine_mixed_waiters_coalesce(self, served_index, queries):
        async def scenario():
            engine = CoalescingEngine(served_index)
            before = engine.batches_executed
            columnar, listed = await asyncio.gather(
                engine.batch("lifetime", queries, columnar=True),
                engine.batch("lifetime", queries),
            )
            expected = served_index.lifetime_batch(queries)
            assert isinstance(listed, list)
            assert listed == expected
            if _kernels.HAVE_NUMPY:
                assert isinstance(columnar, ColumnarResults)
                assert columnar.to_list() == expected
            else:
                assert columnar == expected
            # Both waiters were answered by the same kernel call.
            assert engine.batches_executed == before + 1

        run(scenario())
