"""Cross-module integration invariants over one full study.

These tests assert relationships *between* subsystems that no unit test
can see: corpus contents versus world ground truth, hitlist snapshots
versus the probe oracle, tracking verdicts versus the device population,
and geolocation hits versus the wardriving database.
"""

import pytest

from repro.addr.eui64 import extract_mac
from repro.addr.ipv6 import iid_of, slash48_of
from repro.core import StudyConfig, run_study
from repro.geo import geolocate_corpus
from repro.core.tracking import analyze_tracking
from repro.world import CAMPAIGN_EPOCH, WEEK, WorldConfig, build_world
from repro.world.strategies import StrategyKind


@pytest.fixture(scope="module")
def integration():
    world = build_world(
        WorldConfig(
            seed=99,
            n_fixed_ases=12,
            n_cellular_ases=4,
            n_hosting_ases=4,
            n_home_networks=200,
            n_cellular_subscribers=100,
            n_hosting_networks=15,
        )
    )
    study = run_study(
        world, StudyConfig(start=CAMPAIGN_EPOCH, weeks=12, seed=99)
    )
    return world, study


class TestCorpusWorldConsistency:
    def test_every_ntp_address_is_routed_client_space(self, integration):
        world, study = integration
        for address in study.ntp.addresses():
            asn = world.ipv6_origin_asn(address)
            assert asn is not None
            profile = world.profiles[asn]
            assert profile.customer_block.contains(address)

    def test_vantage_addresses_never_in_corpus(self, integration):
        world, study = integration
        vantage_addresses = {v.address for v in world.vantages}
        assert not vantage_addresses & set(study.ntp.addresses())

    def test_observation_times_inside_campaign(self, integration):
        world, study = integration
        start = study.campaign.config.start
        end = study.campaign.config.end
        for _, (first, last, _) in study.ntp.items():
            assert start <= first <= last < end

    def test_corpus_addresses_were_really_held(self, integration):
        # Every observed address must be reconstructible as some
        # device's address at its first sighting time.
        world, study = integration
        sample = sorted(study.ntp.addresses())[:300]
        for address in sample:
            when = study.ntp.first_seen(address)
            asn = world.ipv6_origin_asn(address)
            profile = world.profiles[asn]
            located = profile.delegation.locate(address, when)
            assert located is not None
            network = world._by_slot[asn][located]
            holder = network.holder_of(address, when)
            assert holder is not None
            assert holder.uses_pool


class TestHitlistWorldConsistency:
    def test_snapshot_addresses_respond_at_snapshot_time(self, integration):
        world, study = integration
        for snapshot in study.hitlist_service.snapshots[:3]:
            for address in sorted(snapshot.responsive)[:100]:
                assert world.is_responsive(address, snapshot.when)

    def test_alias_list_matches_world_truth(self, integration):
        world, study = integration
        for prefix in study.hitlist_service.aliased_prefixes:
            asn = world.routing.origin_asn(prefix.network)
            assert world.profiles[asn].aliased

    def test_no_aliased_addresses_in_published_list(self, integration):
        world, study = integration
        service = study.hitlist_service
        for address in study.hitlist.addresses():
            assert not service.is_aliased(address)


class TestTrackingWorldConsistency:
    def test_tracked_macs_belong_to_eui64_devices(self, integration):
        world, study = integration
        report = analyze_tracking(
            study.ntp, world.ipv6_origin_asn, world.country_of
        )
        device_macs = {
            device.mac
            for device in world.iter_devices()
            if device.strategy.kind is StrategyKind.EUI64
        }
        for mac in report.tracks:
            assert mac in device_macs

    def test_reused_macs_classified_as_reuse_or_static(self, integration):
        world, study = integration
        report = analyze_tracking(
            study.ntp, world.ipv6_origin_asn, world.country_of
        )
        for mac in world.reused_macs:
            track = report.tracks.get(mac)
            if track is None or not track.multi_slash64:
                continue
            # A reused MAC seen in several countries must classify as
            # MAC_REUSE; if only one of its devices was captured it can
            # degrade to a same-AS class, never to USER_MOVEMENT with
            # multiple countries.
            if len(track.countries) > 1:
                assert track.classify().value == "likely_mac_reuse"


class TestGeolocationWorldConsistency:
    def test_geolocated_macs_are_real_ap_devices(self, integration):
        world, study = integration
        report = geolocate_corpus(
            list(study.ntp.eui64_addresses()), world.bssid_db, min_pairs=8
        )
        device_by_mac = {
            device.mac: device for device in world.iter_devices()
        }
        for located in report.located:
            device = device_by_mac.get(located.mac)
            # A genuine hit is a device whose BSSID we inserted; the
            # geolocation must match the wardriving record exactly.
            if device is not None and device.wifi_bssid == located.bssid:
                assert world.bssid_db.lookup(located.bssid) == located.point

    def test_release_covers_exactly_corpus_48s(self, integration):
        from repro.core import build_release

        world, study = integration
        artifact = build_release(study.ntp)
        assert set(artifact.prefix_counts) == {
            slash48_of(address) for address in study.ntp.addresses()
        }


class TestDatasetDisjointness:
    def test_caida_is_infrastructure_flavoured(self, integration):
        world, study = integration
        # CAIDA's discoveries are routers, ::1 hosts or aliased space —
        # never high-entropy client addresses.
        from repro.addr.entropy import normalized_iid_entropy

        high = sum(
            1
            for address in study.caida.addresses()
            if normalized_iid_entropy(iid_of(address)) >= 0.75
            and not world.profiles[
                world.ipv6_origin_asn(address)
            ].aliased
        )
        assert high / max(1, len(study.caida)) < 0.05

    def test_eui64_never_in_caida(self, integration):
        # Traceroute targets are ::1 addresses; EUI-64 can only enter
        # via router interfaces, which are low-byte by construction.
        world, study = integration
        eui = [
            address
            for address in study.caida.addresses()
            if extract_mac(address) is not None
        ]
        assert len(eui) / max(1, len(study.caida)) < 0.01
