"""Tests for repro.addr.ipv6 — address representation and bit helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.addr import ipv6

addresses = st.integers(min_value=0, max_value=ipv6.MAX_ADDRESS)
iids = st.integers(min_value=0, max_value=ipv6.IID_MASK)


class TestParseFormat:
    def test_parse_loopback(self):
        assert ipv6.parse("::1") == 1

    def test_parse_full_form(self):
        assert ipv6.parse("2001:0db8:0000:0000:0000:0000:0000:0001") == (
            0x20010DB8 << 96
        ) | 1

    def test_format_compresses(self):
        assert ipv6.format_address((0x20010DB8 << 96) | 1) == "2001:db8::1"

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            ipv6.parse("not-an-address")

    def test_parse_rejects_ipv4(self):
        with pytest.raises(ValueError):
            ipv6.parse("192.0.2.1")

    def test_format_rejects_negative(self):
        with pytest.raises(ValueError):
            ipv6.format_address(-1)

    def test_format_rejects_oversize(self):
        with pytest.raises(ValueError):
            ipv6.format_address(1 << 128)

    @given(addresses)
    def test_roundtrip(self, value):
        assert ipv6.parse(ipv6.format_address(value)) == value


class TestStructure:
    def test_iid_of(self):
        addr = ipv6.parse("2001:db8::dead:beef")
        assert ipv6.iid_of(addr) == 0xDEADBEEF

    def test_prefix_of_zeroes_iid(self):
        addr = ipv6.parse("2001:db8:1:2:3:4:5:6")
        assert ipv6.format_address(ipv6.prefix_of(addr)) == "2001:db8:1:2::"

    def test_with_iid_combines(self):
        prefix = ipv6.parse("2001:db8::")
        assert ipv6.with_iid(prefix, 0x42) == ipv6.parse("2001:db8::42")

    def test_with_iid_masks_overflow(self):
        prefix = ipv6.parse("2001:db8::")
        # IID wider than 64 bits is truncated, prefix side of iid ignored
        assert ipv6.with_iid(prefix, (1 << 64) | 7) == ipv6.parse("2001:db8::7")

    def test_slash48(self):
        addr = ipv6.parse("2001:db8:aaaa:bbbb::1")
        assert ipv6.format_address(ipv6.slash48_of(addr)) == "2001:db8:aaaa::"

    def test_slash56(self):
        addr = ipv6.parse("2001:db8:aaaa:bbcc::1")
        assert ipv6.format_address(ipv6.slash56_of(addr)) == "2001:db8:aaaa:bb00::"

    def test_slash64_equals_prefix(self):
        addr = ipv6.parse("2001:db8:aaaa:bbbb:1:2:3:4")
        assert ipv6.slash64_of(addr) == ipv6.prefix_of(addr)

    @given(addresses)
    def test_split_recombine_identity(self, value):
        assert ipv6.with_iid(ipv6.prefix_of(value), ipv6.iid_of(value)) == value

    @given(addresses)
    def test_slash48_contains_slash64(self, value):
        assert ipv6.slash48_of(ipv6.slash64_of(value)) == ipv6.slash48_of(value)


class TestPrefixKey:
    def test_same_prefix_same_key(self):
        a = ipv6.parse("2001:db8::1")
        b = ipv6.parse("2001:db8::ffff")
        assert ipv6.prefix_key(a, 64) == ipv6.prefix_key(b, 64)

    def test_different_prefix_different_key(self):
        a = ipv6.parse("2001:db8:0:1::1")
        b = ipv6.parse("2001:db8:0:2::1")
        assert ipv6.prefix_key(a, 64) != ipv6.prefix_key(b, 64)

    def test_length_zero_is_universal(self):
        assert ipv6.prefix_key(ipv6.MAX_ADDRESS, 0) == ipv6.prefix_key(0, 0)

    def test_length_128_is_identity(self):
        addr = ipv6.parse("2001:db8::1")
        assert ipv6.prefix_key(addr, 128) == (addr, 128)

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            ipv6.prefix_key(0, 129)
        with pytest.raises(ValueError):
            ipv6.prefix_key(0, -1)

    @given(addresses, st.integers(min_value=0, max_value=128))
    def test_key_is_idempotent(self, value, length):
        network, _ = ipv6.prefix_key(value, length)
        assert ipv6.prefix_key(network, length) == (network, length)


class TestSubnetId:
    def test_slash56_subnets(self):
        base = ipv6.parse("2001:db8:aa:bb00::")
        addr = ipv6.parse("2001:db8:aa:bb07::1")
        assert ipv6.subnet_id(addr, 56) == 7
        assert ipv6.subnet_id(base, 56) == 0

    def test_slash64_has_no_subnet_bits(self):
        assert ipv6.subnet_id(ipv6.parse("2001:db8::1"), 64) == 0

    def test_rejects_length_past_64(self):
        with pytest.raises(ValueError):
            ipv6.subnet_id(0, 65)


class TestNibbles:
    def test_zero_iid(self):
        assert ipv6.nibbles_of_iid(0) == [0] * 16

    def test_ordering_msb_first(self):
        assert ipv6.nibbles_of_iid(0x0123456789ABCDEF) == list(range(16))

    def test_always_16_nibbles(self):
        assert len(ipv6.nibbles_of_iid(0xF)) == 16

    @given(iids)
    def test_nibbles_reconstruct_iid(self, iid):
        nibbles = ipv6.nibbles_of_iid(iid)
        value = 0
        for nibble in nibbles:
            value = (value << 4) | nibble
        assert value == iid

    @given(iids)
    def test_iid_bytes_matches_nibbles(self, iid):
        raw = ipv6.iid_bytes(iid)
        assert len(raw) == 8
        assert int.from_bytes(raw, "big") == iid


class TestScopePredicates:
    def test_documentation_prefix(self):
        assert ipv6.is_documentation(ipv6.parse("2001:db8::1"))
        assert not ipv6.is_documentation(ipv6.parse("2001:db9::1"))

    def test_link_local(self):
        assert ipv6.is_link_local(ipv6.parse("fe80::1"))
        assert ipv6.is_link_local(ipv6.parse("febf::1"))
        assert not ipv6.is_link_local(ipv6.parse("fec0::1"))

    def test_multicast(self):
        assert ipv6.is_multicast(ipv6.parse("ff02::1"))
        assert not ipv6.is_multicast(ipv6.parse("fe80::1"))

    def test_global_unicast(self):
        assert ipv6.is_global_unicast(ipv6.parse("2001:db8::1"))
        assert ipv6.is_global_unicast(ipv6.parse("3fff::1"))
        assert not ipv6.is_global_unicast(ipv6.parse("fe80::1"))
        assert not ipv6.is_global_unicast(ipv6.parse("::1"))


class TestRandomIid:
    def test_stays_in_prefix(self):
        import random

        rng = random.Random(7)
        prefix = ipv6.parse("2001:db8:1:2::")
        for _ in range(20):
            addr = ipv6.random_iid_address(prefix, rng)
            assert ipv6.prefix_of(addr) == prefix

    def test_deterministic_for_seed(self):
        import random

        prefix = ipv6.parse("2001:db8::")
        a = ipv6.random_iid_address(prefix, random.Random(1))
        b = ipv6.random_iid_address(prefix, random.Random(1))
        assert a == b


class TestIPv6Class:
    def test_from_string(self):
        assert ipv6.IPv6("2001:db8::1").value == (0x20010DB8 << 96) | 1

    def test_from_int(self):
        assert str(ipv6.IPv6(1)) == "::1"

    def test_from_bytes(self):
        packed = ((0x20010DB8 << 96) | 1).to_bytes(16, "big")
        assert ipv6.IPv6(packed) == ipv6.IPv6("2001:db8::1")

    def test_from_ipv6_copies(self):
        a = ipv6.IPv6("2001:db8::1")
        assert ipv6.IPv6(a) == a

    def test_rejects_short_bytes(self):
        with pytest.raises(ValueError):
            ipv6.IPv6(b"\x00" * 4)

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError):
            ipv6.IPv6(3.14)

    def test_rejects_out_of_range_int(self):
        with pytest.raises(ValueError):
            ipv6.IPv6(1 << 128)

    def test_accessors(self):
        a = ipv6.IPv6("2001:db8:aaaa:bbbb::42")
        assert a.iid == 0x42
        assert a.prefix64 == ipv6.parse("2001:db8:aaaa:bbbb::")
        assert a.prefix48 == ipv6.parse("2001:db8:aaaa::")
        assert len(a.packed) == 16

    def test_with_iid(self):
        a = ipv6.IPv6("2001:db8::1")
        assert str(a.with_iid(0xFF)) == "2001:db8::ff"

    def test_in_prefix(self):
        a = ipv6.IPv6("2001:db8::1")
        assert a.in_prefix(ipv6.IPv6("2001:db8::"), 32)
        assert not a.in_prefix(ipv6.IPv6("2001:db9::"), 32)

    def test_ordering_and_hash(self):
        a, b = ipv6.IPv6("::1"), ipv6.IPv6("::2")
        assert a < b and a <= b and a != b
        assert a < 2 and a == 1
        assert len({a, ipv6.IPv6(1)}) == 1

    def test_int_conversion(self):
        assert int(ipv6.IPv6("::2")) == 2
        assert hex(ipv6.IPv6("::2")) == "0x2"  # __index__

    def test_repr_round_trips(self):
        a = ipv6.IPv6("2001:db8::1")
        assert eval(repr(a), {"IPv6": ipv6.IPv6}) == a


class TestAddressesToInts:
    def test_mixed_inputs(self):
        out = list(ipv6.addresses_to_ints(["::1", 2, ipv6.IPv6("::3")]))
        assert out == [1, 2, 3]

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError):
            list(ipv6.addresses_to_ints([1.5]))
