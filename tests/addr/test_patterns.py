"""Tests for repro.addr.patterns — the seven-category classifier."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.addr import ipv6
from repro.addr.patterns import (
    AddressCategory,
    CategoryClassifier,
    category_fractions,
    classify_iid_structurally,
    embedded_ipv4_candidates,
)

iids = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestEmbeddedIPv4:
    def test_hex32_encoding(self):
        # ::c000:0201 embeds 192.0.2.1 verbatim
        candidates = embedded_ipv4_candidates(0xC0000201)
        assert candidates["hex32"] == 0xC0000201

    def test_hex32_requires_zero_high_bits(self):
        candidates = embedded_ipv4_candidates((1 << 32) | 0xC0000201)
        assert "hex32" not in candidates

    def test_decimal_groups_encoding(self):
        # ::192:0:2:1 spells 192.0.2.1 in decimal-coded groups
        iid = (0x0192 << 48) | (0x0000 << 32) | (0x0002 << 16) | 0x0001
        candidates = embedded_ipv4_candidates(iid)
        assert candidates["decimal_groups"] == (192 << 24) | (2 << 8) | 1

    def test_decimal_groups_rejects_hex_digits(self):
        iid = (0x01AB << 48) | 0x0001
        assert "decimal_groups" not in embedded_ipv4_candidates(iid)

    def test_decimal_groups_rejects_over_255(self):
        iid = (0x0300 << 48) | 0x0001  # "300" > 255
        assert "decimal_groups" not in embedded_ipv4_candidates(iid)

    def test_byte_per_group_encoding(self):
        # ::c0:0:2:1 carries one octet per group
        iid = (0xC0 << 48) | (0x00 << 32) | (0x02 << 16) | 0x01
        candidates = embedded_ipv4_candidates(iid)
        assert candidates["byte_per_group"] == 0xC0000201

    def test_zero_iid_has_no_candidates(self):
        assert embedded_ipv4_candidates(0) == {}

    def test_random_iid_rarely_matches(self):
        rng = random.Random(11)
        hits = sum(
            1
            for _ in range(2000)
            if embedded_ipv4_candidates(rng.getrandbits(64))
        )
        # hex32 needs 32 zero high bits; decimal groups need all-decimal
        # nibble spellings. Both are rare for uniform IIDs.
        assert hits < 40

    @given(iids)
    def test_candidates_are_valid_ipv4(self, iid):
        for value in embedded_ipv4_candidates(iid).values():
            assert 0 <= value <= 0xFFFFFFFF


class TestStructuralClassification:
    @pytest.mark.parametrize(
        "iid,expected",
        [
            (0, AddressCategory.ZEROES),
            (1, AddressCategory.LOW_BYTE),
            (0xFF, AddressCategory.LOW_BYTE),
            (0x100, AddressCategory.LOW_2_BYTES),
            (0xFFFF, AddressCategory.LOW_2_BYTES),
            (0x0123456789ABCDEF, AddressCategory.HIGH_ENTROPY),
            (0x0001000100010001 * 0x10000 + 1, AddressCategory.LOW_ENTROPY),
        ],
    )
    def test_cases(self, iid, expected):
        assert classify_iid_structurally(iid) is expected

    def test_ipv4_verdict_applies_above_low2(self):
        assert (
            classify_iid_structurally(0xC0000201, ipv4_embedded=True)
            is AddressCategory.IPV4_MAPPED
        )

    def test_low_byte_wins_over_ipv4(self):
        assert (
            classify_iid_structurally(0x1, ipv4_embedded=True)
            is AddressCategory.LOW_BYTE
        )

    def test_medium_entropy(self):
        # Four distinct nibbles repeated: entropy 2 bits/nibble -> 0.5.
        iid = 0x1122334411223344
        assert classify_iid_structurally(iid) is AddressCategory.MEDIUM_ENTROPY

    @given(iids)
    def test_total_function(self, iid):
        assert isinstance(classify_iid_structurally(iid), AddressCategory)


def _make_world_lookups(embedding_asn=64500):
    """Origin lookups: all IPv6 -> embedding_asn, IPv4 192.0.2.0/24 -> same."""

    def ipv6_origin(address):
        return embedding_asn

    def ipv4_origin(address):
        if (address >> 8) == 0xC00002:  # 192.0.2.0/24
            return embedding_asn
        return None

    return ipv6_origin, ipv4_origin


class TestCategoryClassifier:
    def _embedded_address(self, host):
        # 2001:db8::c000:02xx embeds 192.0.2.<host>
        return ipv6.parse("2001:db8::") | (0xC0000200 | host)

    def test_accepts_when_thresholds_met(self):
        ipv6_origin, ipv4_origin = _make_world_lookups()
        classifier = CategoryClassifier(
            ipv6_origin, ipv4_origin, min_as_instances=5, min_as_fraction=0.1
        )
        corpus = [self._embedded_address(i) for i in range(10)]
        counts = classifier.classify_corpus(corpus)
        assert counts[AddressCategory.IPV4_MAPPED] == 10

    def test_rejects_below_instance_threshold(self):
        ipv6_origin, ipv4_origin = _make_world_lookups()
        classifier = CategoryClassifier(
            ipv6_origin, ipv4_origin, min_as_instances=50, min_as_fraction=0.1
        )
        corpus = [self._embedded_address(i) for i in range(10)]
        counts = classifier.classify_corpus(corpus)
        assert counts[AddressCategory.IPV4_MAPPED] == 0

    def test_rejects_below_fraction_threshold(self):
        ipv6_origin, ipv4_origin = _make_world_lookups()
        classifier = CategoryClassifier(
            ipv6_origin, ipv4_origin, min_as_instances=5, min_as_fraction=0.5
        )
        rng = random.Random(5)
        corpus = [self._embedded_address(i) for i in range(10)]
        # Add plenty of random addresses so embedded fraction < 50%.
        corpus += [
            ipv6.parse("2001:db8::") | rng.getrandbits(64) for _ in range(100)
        ]
        counts = classifier.classify_corpus(corpus)
        assert counts[AddressCategory.IPV4_MAPPED] == 0

    def test_without_lookups_never_ipv4(self):
        classifier = CategoryClassifier()
        counts = classifier.classify_corpus(
            [self._embedded_address(i) for i in range(200)]
        )
        assert counts[AddressCategory.IPV4_MAPPED] == 0
        # hex32 low-half addresses straddle the low/medium entropy bound
        # (13-14 zero nibbles); none reach high entropy.
        assert counts[AddressCategory.HIGH_ENTROPY] == 0
        assert (
            counts[AddressCategory.LOW_ENTROPY]
            + counts[AddressCategory.MEDIUM_ENTROPY]
            == 200
        )

    def test_counts_partition_corpus(self):
        rng = random.Random(9)
        corpus = [rng.getrandbits(128) for _ in range(500)]
        classifier = CategoryClassifier()
        counts = classifier.classify_corpus(corpus)
        assert sum(counts.values()) == 500

    def test_rejects_bad_thresholds(self):
        with pytest.raises(ValueError):
            CategoryClassifier(min_as_instances=0)
        with pytest.raises(ValueError):
            CategoryClassifier(min_as_fraction=1.5)

    def test_unrouted_addresses_fall_back_to_entropy(self):
        classifier = CategoryClassifier(
            ipv6_origin_asn=lambda a: None,
            ipv4_origin_asn=lambda a: 64500,
            min_as_instances=1,
            min_as_fraction=0.0,
        )
        counts = classifier.classify_corpus(
            [self._embedded_address(i) for i in range(5)]
        )
        assert counts[AddressCategory.IPV4_MAPPED] == 0


class TestCategoryFractions:
    def test_fractions_sum_to_one(self):
        counts = {category: 0 for category in AddressCategory}
        counts[AddressCategory.ZEROES] = 3
        counts[AddressCategory.HIGH_ENTROPY] = 1
        fractions = category_fractions(counts)
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert fractions[AddressCategory.ZEROES] == pytest.approx(0.75)

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            category_fractions({category: 0 for category in AddressCategory})
