"""Tests for repro.addr.entropy — normalized IID entropy and classes."""

import math
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.addr import entropy

iids = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestShannon:
    def test_uniform_sequence(self):
        assert entropy.shannon_entropy(list(range(16))) == pytest.approx(4.0)

    def test_constant_sequence(self):
        assert entropy.shannon_entropy([7] * 16) == 0.0

    def test_two_symbols(self):
        assert entropy.shannon_entropy([0, 1]) == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            entropy.shannon_entropy([])

    def test_skewed_sequence(self):
        # 3/4 vs 1/4 split: H = 0.75*log2(4/3) + 0.25*log2(4)
        expected = 0.75 * math.log2(4 / 3) + 0.25 * 2
        assert entropy.shannon_entropy([0, 0, 0, 1]) == pytest.approx(expected)


class TestNormalizedIidEntropy:
    def test_zero_iid(self):
        assert entropy.normalized_iid_entropy(0) == 0.0

    def test_all_distinct_nibbles(self):
        assert entropy.normalized_iid_entropy(0x0123456789ABCDEF) == 1.0

    def test_low_byte_iid_is_low(self):
        # ::1 — fifteen 0-nibbles and one 1-nibble.
        value = entropy.normalized_iid_entropy(1)
        assert 0.0 < value < 0.25

    def test_repeating_pattern_is_not_maximal(self):
        # Two alternating nibbles: 1 bit/nibble -> 0.25 normalized.
        assert entropy.normalized_iid_entropy(0xAAAAAAAAAAAAAAAA) == 0.0
        assert entropy.normalized_iid_entropy(0xABABABABABABABAB) == pytest.approx(
            0.25
        )

    def test_random_iids_score_high(self):
        # 16 nibble draws from a 16-symbol alphabet have empirical entropy
        # biased below the source entropy (~0.80 normalized on average) —
        # this matches the paper's ~0.8 median for its client-heavy corpus.
        rng = random.Random(3)
        values = [
            entropy.normalized_iid_entropy(rng.getrandbits(64)) for _ in range(500)
        ]
        mean = sum(values) / len(values)
        assert 0.77 < mean < 0.83
        assert sum(v >= 0.75 for v in values) / len(values) > 0.75

    @given(iids)
    def test_bounds(self, iid):
        value = entropy.normalized_iid_entropy(iid)
        assert 0.0 <= value <= 1.0

    @given(iids)
    def test_nibble_permutation_invariant(self, iid):
        # Entropy depends only on the multiset of nibbles; reversing the
        # nibble order must not change it.
        nibbles = [(iid >> shift) & 0xF for shift in range(0, 64, 4)]
        reversed_iid = 0
        for nibble in nibbles:
            reversed_iid = (reversed_iid << 4) | nibble
        assert entropy.normalized_iid_entropy(iid) == pytest.approx(
            entropy.normalized_iid_entropy(reversed_iid)
        )


class TestByteEntropy:
    def test_zero(self):
        assert entropy.normalized_byte_entropy(0) == 0.0

    def test_all_distinct_bytes(self):
        assert entropy.normalized_byte_entropy(0x0102030405060708) == 1.0

    @given(iids)
    def test_bounds(self, iid):
        assert 0.0 <= entropy.normalized_byte_entropy(iid) <= 1.0


class TestEntropyClass:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0.0, entropy.EntropyClass.LOW),
            (0.2499, entropy.EntropyClass.LOW),
            (0.25, entropy.EntropyClass.MEDIUM),
            (0.5, entropy.EntropyClass.MEDIUM),
            (0.7499, entropy.EntropyClass.MEDIUM),
            (0.75, entropy.EntropyClass.HIGH),
            (1.0, entropy.EntropyClass.HIGH),
        ],
    )
    def test_thresholds(self, value, expected):
        assert entropy.entropy_class(value) is expected

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            entropy.entropy_class(-0.1)
        with pytest.raises(ValueError):
            entropy.entropy_class(1.1)

    def test_bounds_property(self):
        for cls in entropy.EntropyClass:
            lo, hi = cls.bounds
            assert lo < hi

    def test_classify_entropies_counts(self):
        counts = entropy.classify_entropies([0, 1, 0x0123456789ABCDEF])
        assert counts[entropy.EntropyClass.LOW] == 2
        assert counts[entropy.EntropyClass.HIGH] == 1
        assert counts[entropy.EntropyClass.MEDIUM] == 0

    @given(st.lists(iids, max_size=50))
    def test_classify_partitions(self, values):
        counts = entropy.classify_entropies(values)
        assert sum(counts.values()) == len(values)


class TestHistogram:
    def test_basic_binning(self):
        hist = entropy.entropy_histogram([0.0, 0.5, 0.99], bins=2)
        assert hist == [1, 2]

    def test_one_is_counted_in_last_bin(self):
        hist = entropy.entropy_histogram([1.0], bins=4)
        assert hist == [0, 0, 0, 1]

    def test_rejects_zero_bins(self):
        with pytest.raises(ValueError):
            entropy.entropy_histogram([0.5], bins=0)

    def test_rejects_negative_entropy(self):
        with pytest.raises(ValueError):
            entropy.entropy_histogram([-0.5])

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0), max_size=100))
    def test_total_preserved(self, values):
        hist = entropy.entropy_histogram(values, bins=10)
        assert sum(hist) == len(values)
