"""Tests for repro.addr.mac — MAC parsing, OUI split, offsets."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.addr import mac

macs = st.integers(min_value=0, max_value=mac.MAX_MAC)
ouis = st.integers(min_value=0, max_value=0xFFFFFF)
nics = st.integers(min_value=0, max_value=0xFFFFFF)
offsets = st.integers(min_value=-(1 << 23), max_value=(1 << 23) - 1)


class TestParseFormat:
    def test_parse_colons(self):
        assert mac.parse_mac("00:11:22:33:44:55") == 0x001122334455

    def test_parse_dashes(self):
        assert mac.parse_mac("AA-BB-CC-DD-EE-FF") == 0xAABBCCDDEEFF

    def test_parse_mixed_case(self):
        assert mac.parse_mac("aA:Bb:cC:Dd:Ee:fF") == 0xAABBCCDDEEFF

    @pytest.mark.parametrize(
        "bad",
        ["", "001122334455", "00:11:22:33:44", "00:11:22:33:44:55:66",
         "gg:11:22:33:44:55", "0:11:22:33:44:55"],
    )
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            mac.parse_mac(bad)

    def test_format(self):
        assert mac.format_mac(0x001122334455) == "00:11:22:33:44:55"

    def test_format_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            mac.format_mac(1 << 48)
        with pytest.raises(ValueError):
            mac.format_mac(-1)

    @given(macs)
    def test_roundtrip(self, value):
        assert mac.parse_mac(mac.format_mac(value)) == value


class TestStructure:
    def test_oui_and_nic(self):
        value = 0xF00220ABCDEF
        assert mac.oui_of(value) == 0xF00220
        assert mac.nic_of(value) == 0xABCDEF

    def test_with_nic(self):
        assert mac.with_nic(0xF00220, 0x000001) == 0xF00220000001

    def test_with_nic_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            mac.with_nic(1 << 24, 0)
        with pytest.raises(ValueError):
            mac.with_nic(0, 1 << 24)

    @given(ouis, nics)
    def test_split_recombine(self, oui, nic):
        value = mac.with_nic(oui, nic)
        assert mac.oui_of(value) == oui
        assert mac.nic_of(value) == nic


class TestBits:
    def test_flip_ul_bit_involution(self):
        value = 0x001122334455
        assert mac.flip_ul_bit(mac.flip_ul_bit(value)) == value

    def test_flip_ul_bit_value(self):
        assert mac.flip_ul_bit(0x001122334455) == 0x021122334455

    def test_locally_administered(self):
        assert mac.is_locally_administered(0x020000000000)
        assert not mac.is_locally_administered(0x000000000000)

    def test_multicast(self):
        assert mac.is_multicast_mac(0x010000000000)
        assert not mac.is_multicast_mac(0x020000000000)


class TestOffsets:
    def test_positive_offset(self):
        wired = mac.with_nic(0xF00220, 100)
        wireless = mac.with_nic(0xF00220, 105)
        assert mac.mac_offset(wired, wireless) == 5

    def test_negative_offset(self):
        wired = mac.with_nic(0xF00220, 100)
        wireless = mac.with_nic(0xF00220, 95)
        assert mac.mac_offset(wired, wireless) == -5

    def test_wrapping_offset(self):
        wired = mac.with_nic(0xF00220, 0xFFFFFF)
        wireless = mac.with_nic(0xF00220, 0x000001)
        assert mac.mac_offset(wired, wireless) == 2

    def test_cross_oui_rejected(self):
        with pytest.raises(ValueError):
            mac.mac_offset(0x001122000000, 0xF00220000000)

    def test_apply_offset_wraps_in_oui(self):
        wired = mac.with_nic(0xF00220, 0xFFFFFF)
        shifted = mac.apply_offset(wired, 1)
        assert mac.oui_of(shifted) == 0xF00220
        assert mac.nic_of(shifted) == 0

    @given(macs, offsets)
    def test_offset_roundtrip(self, wired, offset):
        wireless = mac.apply_offset(wired, offset)
        assert mac.oui_of(wireless) == mac.oui_of(wired)
        assert mac.mac_offset(wired, wireless) == offset


class TestMACAddressClass:
    def test_from_string_and_int(self):
        assert mac.MACAddress("00:11:22:33:44:55") == mac.MACAddress(
            0x001122334455
        )

    def test_copy_constructor(self):
        m = mac.MACAddress(5)
        assert mac.MACAddress(m) == m

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError):
            mac.MACAddress([1, 2])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            mac.MACAddress(1 << 48)

    def test_properties(self):
        m = mac.MACAddress("f0:02:20:aa:bb:cc")
        assert m.oui == 0xF00220
        assert m.nic == 0xAABBCC
        assert m.value == 0xF00220AABBCC

    def test_offset_to_and_shifted(self):
        a = mac.MACAddress("f0:02:20:00:00:64")
        b = a.shifted(3)
        assert a.offset_to(b) == 3
        assert b.value == 0xF00220000067

    def test_str_repr_hash_order(self):
        a = mac.MACAddress(1)
        b = mac.MACAddress(2)
        assert str(a) == "00:00:00:00:00:01"
        assert "MACAddress" in repr(a)
        assert a < b and a < 2 and a == 1
        assert len({a, mac.MACAddress(1)}) == 1
        assert int(a) == 1
