"""Tests for repro.addr.eui64 — EUI-64 construction/recovery."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.addr import eui64, ipv6, mac

macs = st.integers(min_value=0, max_value=mac.MAX_MAC)
iids = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestConstruction:
    def test_known_vector(self):
        # RFC 4291 Appendix A style example: MAC 34:56:78:9a:bc:de
        value = mac.parse_mac("34:56:78:9a:bc:de")
        iid = eui64.mac_to_iid(value)
        # 34 ^ 02 = 36, then 56 78 ff fe 9a bc de
        assert iid == 0x365678FFFE9ABCDE

    def test_ul_bit_cleared_when_set(self):
        # A locally-administered MAC has its U/L bit *cleared* in the IID.
        value = 0x021122334455
        iid = eui64.mac_to_iid(value)
        assert (iid >> 56) & 0xFF == 0x00

    def test_marker_present(self):
        assert eui64.looks_like_eui64(eui64.mac_to_iid(0))

    def test_rejects_out_of_range_mac(self):
        with pytest.raises(ValueError):
            eui64.mac_to_iid(1 << 48)


class TestDetection:
    def test_detects_marker(self):
        assert eui64.looks_like_eui64(0x021122FFFE334455)

    def test_rejects_non_marker(self):
        assert not eui64.looks_like_eui64(0x0211223344556677)

    def test_random_false_positive_rate_is_small(self):
        rng = random.Random(42)
        trials = 200_000
        hits = sum(
            1 for _ in range(trials) if eui64.looks_like_eui64(rng.getrandbits(64))
        )
        # Expectation is trials / 65536 ~ 3; allow generous headroom.
        assert hits <= 20


class TestRecovery:
    def test_iid_to_mac_inverts(self):
        value = mac.parse_mac("00:25:9c:aa:bb:cc")
        assert eui64.iid_to_mac(eui64.mac_to_iid(value)) == value

    def test_iid_to_mac_rejects_non_eui64(self):
        with pytest.raises(ValueError):
            eui64.iid_to_mac(0x1234567812345678)

    @given(macs)
    def test_roundtrip_all_macs(self, value):
        assert eui64.iid_to_mac(eui64.mac_to_iid(value)) == value

    @given(macs)
    def test_oui_preserved_through_embedding(self, value):
        recovered = eui64.iid_to_mac(eui64.mac_to_iid(value))
        assert mac.oui_of(recovered) == mac.oui_of(value)


class TestFullAddress:
    def test_mac_to_address(self):
        prefix = ipv6.parse("2001:db8:1:2::")
        value = mac.parse_mac("34:56:78:9a:bc:de")
        addr = eui64.mac_to_address(prefix, value)
        assert ipv6.prefix_of(addr) == prefix
        assert ipv6.format_address(addr) == "2001:db8:1:2:3656:78ff:fe9a:bcde"

    def test_extract_mac_from_address(self):
        prefix = ipv6.parse("2001:db8::")
        value = 0x001122334455
        addr = eui64.mac_to_address(prefix, value)
        assert eui64.extract_mac(addr) == value

    def test_extract_mac_returns_none_for_random(self):
        assert eui64.extract_mac(ipv6.parse("2001:db8::1234:5678:9abc:def0")) is None

    @given(macs, st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_extract_is_prefix_independent(self, value, prefix_bits):
        prefix = prefix_bits << 64
        assert eui64.extract_mac(eui64.mac_to_address(prefix, value)) == value


class TestExpectedRandom:
    def test_paper_bound(self):
        # The paper: 7,914,066,999 / 65,536 < 121,000.
        assert eui64.expected_random_eui64(7_914_066_999) < 121_000

    def test_zero_corpus(self):
        assert eui64.expected_random_eui64(0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            eui64.expected_random_eui64(-1)

    def test_linear_in_corpus_size(self):
        assert eui64.expected_random_eui64(131_072) == pytest.approx(2.0)
