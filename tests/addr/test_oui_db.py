"""Tests for repro.addr.oui_db — OUI registry and manufacturer tallies."""

import pytest

from repro.addr import mac
from repro.addr.oui_db import (
    DEFAULT_UNLISTED_OUIS,
    UNLISTED,
    OUIDatabase,
    VendorRecord,
    default_oui_database,
    manufacturer_counts,
)


class TestVendorRecord:
    def test_valid(self):
        record = VendorRecord("X", (0x001122,))
        assert record.ouis == (0x001122,)

    def test_rejects_bad_oui(self):
        with pytest.raises(ValueError):
            VendorRecord("X", (1 << 24,))


class TestOUIDatabase:
    def test_register_and_lookup(self):
        db = OUIDatabase()
        db.register("Acme", [0xAABBCC])
        assert db.lookup_oui(0xAABBCC) == "Acme"
        assert db.lookup_mac(mac.with_nic(0xAABBCC, 42)) == "Acme"

    def test_unknown_is_none(self):
        db = OUIDatabase()
        assert db.lookup_oui(0x123456) is None

    def test_reregister_same_vendor_ok(self):
        db = OUIDatabase()
        db.register("Acme", [0xAABBCC])
        db.register("Acme", [0xAABBCC])
        assert db.lookup_oui(0xAABBCC) == "Acme"

    def test_conflicting_registration_rejected(self):
        db = OUIDatabase()
        db.register("Acme", [0xAABBCC])
        with pytest.raises(ValueError):
            db.register("Other", [0xAABBCC])

    def test_rejects_unlisted_name(self):
        db = OUIDatabase()
        with pytest.raises(ValueError):
            db.register(UNLISTED, [0x001122])

    def test_rejects_empty_name(self):
        db = OUIDatabase()
        with pytest.raises(ValueError):
            db.register("", [0x001122])

    def test_rejects_bad_oui(self):
        db = OUIDatabase()
        with pytest.raises(ValueError):
            db.register("Acme", [1 << 24])

    def test_ouis_of_and_vendors(self):
        db = OUIDatabase()
        db.register("Acme", [0x000001, 0x000002])
        assert db.ouis_of("Acme") == (0x000001, 0x000002)
        assert db.ouis_of("Missing") == ()
        assert db.vendors() == ("Acme",)

    def test_len_and_contains(self):
        db = OUIDatabase()
        db.register("Acme", [0x000001])
        assert len(db) == 1
        assert 0x000001 in db
        assert 0x000002 not in db


class TestDefaultDatabase:
    def test_table2_vendors_present(self):
        db = default_oui_database()
        for vendor in (
            "Amazon Technologies Inc.",
            "Samsung Electronics Co.,Ltd",
            "Sonos, Inc.",
            "Huawei Technologies",
            "AVM GmbH",
        ):
            assert db.ouis_of(vendor), vendor

    def test_unlisted_ouis_not_registered(self):
        db = default_oui_database()
        for oui in DEFAULT_UNLISTED_OUIS:
            assert db.lookup_oui(oui) is None

    def test_paper_unlisted_exemplar(self):
        # f0:02:20 is the paper's most frequent unlisted OUI.
        assert 0xF00220 in DEFAULT_UNLISTED_OUIS

    def test_no_duplicate_ouis(self):
        db = default_oui_database()
        all_ouis = [oui for vendor in db.vendors() for oui in db.ouis_of(vendor)]
        assert len(all_ouis) == len(set(all_ouis)) == len(db)


class TestManufacturerCounts:
    def test_counts_listed_and_unlisted(self):
        db = OUIDatabase()
        db.register("Acme", [0x000001])
        macs = [
            mac.with_nic(0x000001, 1),
            mac.with_nic(0x000001, 2),
            mac.with_nic(0xF00220, 1),
        ]
        counts = manufacturer_counts(macs, db)
        assert counts["Acme"] == 2
        assert counts[UNLISTED] == 1

    def test_empty_input(self):
        assert manufacturer_counts([], OUIDatabase()) == {}

    def test_most_common_ordering(self):
        db = default_oui_database()
        avm_oui = db.ouis_of("AVM GmbH")[0]
        macs = [mac.with_nic(0xF00220, i) for i in range(5)]
        macs += [mac.with_nic(avm_oui, i) for i in range(2)]
        top = manufacturer_counts(macs, db).most_common(1)
        assert top[0] == (UNLISTED, 5)
