"""Tests for repro.scan.targetgen."""

import pytest

from repro.addr.ipv6 import parse, slash48_of
from repro.scan.targetgen import (
    low_byte_candidates,
    pattern_candidates,
    subnet_low_byte_candidates,
)


class TestLowByteCandidates:
    def test_basic(self):
        base = parse("2001:db8::")
        out = list(low_byte_candidates([base], hosts=3))
        assert out == [base | 1, base | 2, base | 3]

    def test_truncates_input_to_48(self):
        noisy = parse("2001:db8:0:5::dead")
        out = list(low_byte_candidates([noisy], hosts=1))
        assert out == [parse("2001:db8::1")]

    def test_rejects_bad_hosts(self):
        with pytest.raises(ValueError):
            list(low_byte_candidates([0], hosts=0))


class TestSubnetLowByte:
    def test_walks_subnets(self):
        base = parse("2001:db8::")
        out = list(subnet_low_byte_candidates([base], subnets=2, hosts=1))
        assert out == [
            parse("2001:db8::1"),
            parse("2001:db8:0:1::1"),
        ]

    def test_count(self):
        out = list(
            subnet_low_byte_candidates([parse("2001:db8::")], subnets=4, hosts=2)
        )
        assert len(out) == 8
        assert len(set(out)) == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            list(subnet_low_byte_candidates([0], subnets=0))
        with pytest.raises(ValueError):
            list(subnet_low_byte_candidates([0], hosts=0))


class TestPatternCandidates:
    def test_recombines_across_observed_64s(self):
        a = parse("2001:db8:0:1::aaaa")
        b = parse("2001:db8:0:2::bbbb")
        out = set(pattern_candidates([a, b]))
        assert parse("2001:db8:0:1::bbbb") in out
        assert parse("2001:db8:0:2::aaaa") in out
        # Seeds themselves are not re-emitted.
        assert a not in out and b not in out

    def test_single_slash64_yields_nothing(self):
        a = parse("2001:db8::aaaa")
        b = parse("2001:db8::bbbb")
        assert list(pattern_candidates([a, b])) == []

    def test_isolated_slash48s_do_not_mix(self):
        a = parse("2001:db8:1:1::aaaa")
        b = parse("2001:db9:0:2::bbbb")
        assert list(pattern_candidates([a, b])) == []

    def test_cap_respected(self):
        seeds = [
            parse("2001:db8::") | (subnet << 64) | iid
            for subnet in range(8)
            for iid in range(1, 9)
        ]
        out = list(pattern_candidates(seeds, max_per_slash48=10))
        assert len(out) <= 10

    def test_cap_validation(self):
        with pytest.raises(ValueError):
            list(pattern_candidates([], max_per_slash48=0))

    def test_candidates_stay_in_slash48(self):
        a = parse("2001:db8:7:1::1234")
        b = parse("2001:db8:7:2::5678")
        for candidate in pattern_candidates([a, b]):
            assert slash48_of(candidate) == slash48_of(a)
