"""Tests for repro.scan.tga — target-generation algorithms."""

import random

import pytest

from repro.addr.ipv6 import iid_of, parse, prefix_of
from repro.scan.tga import ClusterExpansion, NibbleModel


def seeds_low_byte(count=20):
    """Training set of low-byte addresses across several /64s.

    Even subnets hold ::1, odd subnets ::2 — so recombinations (::2 in an
    even subnet, ::1 in an odd one) are legitimate non-seed candidates.
    """
    return [
        parse("2001:db8::") | (subnet << 64) | (1 + subnet % 2)
        for subnet in range(count)
    ]


def seeds_structured():
    """Two /64s whose IIDs share an obvious pattern (prefix 0xdead)."""
    base = parse("2001:db8:7::")
    return [
        base | (subnet << 64) | (0xDEAD << 16) | low
        for subnet in (0, 1)
        for low in (0x0001, 0x0002, 0x0003)
    ]


class TestNibbleModel:
    def test_fit_requires_seeds(self):
        with pytest.raises(ValueError):
            NibbleModel().fit([])

    def test_generate_requires_fit(self):
        with pytest.raises(ValueError):
            NibbleModel().generate(5, random.Random(1))

    def test_rejects_negative_budget(self):
        model = NibbleModel().fit(seeds_low_byte())
        with pytest.raises(ValueError):
            model.generate(-1, random.Random(1))

    def test_candidates_in_training_prefixes(self):
        seeds = seeds_low_byte()
        model = NibbleModel().fit(seeds)
        prefixes = {prefix_of(seed) for seed in seeds}
        for candidate in model.generate(50, random.Random(2)):
            assert prefix_of(candidate) in prefixes

    def test_candidates_exclude_seeds_and_duplicates(self):
        seeds = seeds_low_byte()
        model = NibbleModel().fit(seeds)
        candidates = model.generate(100, random.Random(3))
        assert not set(candidates) & set(seeds)
        assert len(candidates) == len(set(candidates))

    def test_learns_low_byte_bias(self):
        # Trained on ::1/::2 addresses, generated IIDs stay tiny.
        model = NibbleModel().fit(seeds_low_byte())
        candidates = model.generate(60, random.Random(4))
        assert candidates
        assert all(iid_of(candidate) <= 0xFF for candidate in candidates)

    def test_learns_structured_pattern(self):
        model = NibbleModel().fit(seeds_structured())
        candidates = model.generate(40, random.Random(5))
        for candidate in candidates:
            # Positions fixed in training stay fixed in generation.
            assert (iid_of(candidate) >> 16) & 0xFFFF == 0xDEAD

    def test_degenerate_single_seed_terminates(self):
        model = NibbleModel().fit([parse("2001:db8::1")])
        # Only one derivable candidate exists, and it IS the seed:
        # generation must terminate empty rather than loop.
        assert model.generate(10, random.Random(6)) == []

    def test_budget_respected(self):
        model = NibbleModel().fit(seeds_low_byte())
        assert len(model.generate(7, random.Random(7))) <= 7
        assert model.generate(0, random.Random(7)) == []


class TestClusterExpansion:
    def test_fit_requires_seeds(self):
        with pytest.raises(ValueError):
            ClusterExpansion().fit([])

    def test_generate_requires_fit(self):
        with pytest.raises(ValueError):
            ClusterExpansion().generate(5, random.Random(1))

    def test_expands_cluster_cross_product(self):
        # IIDs ::11, ::12, ::21 -> alphabets {1,2} x {1,2} at the two low
        # positions: the missing combination ::22 must be generated.
        base = parse("2001:db8:9::")
        seeds = [base | 0x11, base | 0x12, base | 0x21]
        generator = ClusterExpansion().fit(seeds)
        candidates = generator.generate(10, random.Random(1))
        assert base | 0x22 in candidates

    def test_candidates_exclude_seeds(self):
        seeds = seeds_structured()
        generator = ClusterExpansion().fit(seeds)
        candidates = generator.generate(100, random.Random(1))
        assert not set(candidates) & set(seeds)

    def test_tight_clusters_first(self):
        base_tight = parse("2001:db8:1::")
        base_loose = parse("2001:db8:2::")
        # Tight: expansion 4 (two 2-value positions), two fresh combos.
        tight = [base_tight | iid for iid in (0x11, 0x22)]
        rng = random.Random(9)
        # Loose: expansion in the hundreds (three seeds of 16 nibbles).
        loose = [base_loose | rng.getrandbits(64) for _ in range(3)]
        generator = ClusterExpansion().fit(tight + loose)
        first = generator.generate(1, random.Random(1))
        assert first
        assert prefix_of(first[0]) == base_tight

    def test_huge_clusters_skipped(self):
        rng = random.Random(11)
        base = parse("2001:db8:3::")
        # 30 random IIDs -> alphabet sizes ~ each position near 16:
        # expansion astronomically exceeds the cap, cluster is skipped.
        seeds = [base | rng.getrandbits(64) for _ in range(30)]
        generator = ClusterExpansion().fit(seeds)
        assert generator.generate(50, random.Random(1)) == []

    def test_budget_respected(self):
        generator = ClusterExpansion().fit(seeds_structured())
        assert len(generator.generate(3, random.Random(1))) <= 3

    def test_candidates_stay_in_cluster_prefix(self):
        seeds = seeds_structured()
        prefixes = {prefix_of(seed) for seed in seeds}
        generator = ClusterExpansion().fit(seeds)
        for candidate in generator.generate(50, random.Random(1)):
            assert prefix_of(candidate) in prefixes
