"""Tests for repro.scan.caida and repro.scan.hitlist_service."""

import pytest

from repro.addr.entropy import normalized_iid_entropy
from repro.addr.ipv6 import iid_of
from repro.scan.caida import CAIDACampaign, split_routed_prefixes
from repro.scan.hitlist_service import HitlistService
from repro.world import CAMPAIGN_EPOCH, WEEK


def vantage_asns(world):
    return sorted({v.asn for v in world.vantages})


class TestSplitRoutedPrefixes:
    def test_splits_customer_blocks(self, scan_world):
        units = list(split_routed_prefixes(scan_world))
        lengths = {unit.length for unit in units}
        assert lengths == {48}
        # Each /40 customer block contributes 256 /48s; infra /48s one each.
        assert len(units) > len(scan_world.profiles)

    def test_max_split_cap(self, scan_world):
        capped = list(split_routed_prefixes(scan_world, max_split=4))
        uncapped = list(split_routed_prefixes(scan_world))
        assert len(capped) < len(uncapped)


class TestCAIDACampaign:
    def test_run_discovers_low_entropy_addresses(self, scan_world):
        campaign = CAIDACampaign(scan_world, vantage_asns(scan_world), seed=1)
        history = campaign.run(
            CAMPAIGN_EPOCH, CAMPAIGN_EPOCH + 4 * WEEK, cycle_days=14
        )
        assert history
        entropies = sorted(
            normalized_iid_entropy(iid_of(address)) for address in history
        )
        # Traceroute-derived data is dominated by ::1-style addresses.
        assert entropies[len(entropies) // 2] < 0.25

    def test_history_intervals_well_formed(self, scan_world):
        campaign = CAIDACampaign(scan_world, vantage_asns(scan_world), seed=1)
        history = campaign.run(
            CAMPAIGN_EPOCH, CAMPAIGN_EPOCH + 4 * WEEK, cycle_days=7
        )
        for first, last in history.values():
            assert first <= last

    def test_multiple_cycles_extend_last_seen(self, scan_world):
        campaign = CAIDACampaign(scan_world, vantage_asns(scan_world), seed=1)
        history = campaign.run(
            CAMPAIGN_EPOCH, CAMPAIGN_EPOCH + 8 * WEEK, cycle_days=7
        )
        assert any(last > first for first, last in history.values())

    def test_validation(self, scan_world):
        with pytest.raises(ValueError):
            CAIDACampaign(scan_world, [])
        campaign = CAIDACampaign(scan_world, vantage_asns(scan_world))
        with pytest.raises(ValueError):
            campaign.run(CAMPAIGN_EPOCH, CAMPAIGN_EPOCH)
        with pytest.raises(ValueError):
            campaign.run(CAMPAIGN_EPOCH, CAMPAIGN_EPOCH + WEEK, cycle_days=0)

    def test_includes_router_interfaces(self, scan_world):
        campaign = CAIDACampaign(scan_world, vantage_asns(scan_world), seed=1)
        history = campaign.run(CAMPAIGN_EPOCH, CAMPAIGN_EPOCH + WEEK)
        routers = scan_world.router_addresses
        assert any(address in routers for address in history)


class TestHitlistService:
    @pytest.fixture(scope="class")
    def service_run(self, scan_world):
        service = HitlistService(
            scan_world, vantage_asns(scan_world)[0], seed=3
        )
        history = service.run(CAMPAIGN_EPOCH, 4)
        return service, history

    def test_snapshots_published(self, service_run):
        service, _ = service_run
        assert len(service.snapshots) == 4
        assert [snapshot.week for snapshot in service.snapshots] == [0, 1, 2, 3]

    def test_responsive_excludes_aliased(self, service_run, scan_world):
        service, history = service_run
        for address in history:
            assert not service.is_aliased(address)

    def test_aliased_detection_finds_world_aliases(self, service_run, scan_world):
        service, _ = service_run
        aliased_profiles = [
            profile for profile in scan_world.profiles.values() if profile.aliased
        ]
        # If any responsive candidate landed in aliased space, APD must
        # have flagged its /64.
        if service.aliased_prefixes:
            for prefix in service.aliased_prefixes:
                asn = scan_world.routing.origin_asn(prefix.network)
                assert scan_world.profiles[asn].aliased

    def test_history_grows_weekly(self, service_run):
        service, history = service_run
        first_week = len(service.snapshots[0].responsive)
        assert len(history) >= first_week

    def test_candidates_exceed_responsive(self, service_run):
        service, _ = service_run
        for snapshot in service.snapshots:
            assert snapshot.candidates_probed >= len(snapshot.responsive)

    def test_validation(self, scan_world):
        with pytest.raises(ValueError):
            HitlistService(scan_world, 1, seed_fraction=0.0)
        with pytest.raises(ValueError):
            HitlistService(scan_world, 1, cpe_seed_fraction=1.5)
        service = HitlistService(scan_world, vantage_asns(scan_world)[0])
        with pytest.raises(ValueError):
            service.run(CAMPAIGN_EPOCH, 0)

    def test_all_responsive_addresses_respond(self, service_run, scan_world):
        service, _ = service_run
        snapshot = service.snapshots[0]
        for address in list(snapshot.responsive)[:50]:
            assert scan_world.is_responsive(address, snapshot.when)
