"""The Hitlist's incrementally-maintained alias trie.

``HitlistService.is_aliased`` used to linear-scan the alias set while
``_filter_aliases`` rebuilt a throwaway trie every week.  Both now read
one trie that grows as APD flags prefixes; these tests pin the trie's
answers to a naive linear scan of the published alias list, across
every week of a real multi-week run.
"""

import pytest

from repro.scan.hitlist_service import HitlistService
from repro.world.clock import WEEK

from .conftest import NOW


def naive_is_aliased(prefixes, address):
    return any(prefix.contains(address) for prefix in prefixes)


@pytest.fixture(scope="module")
def service(scan_world):
    service = HitlistService(scan_world, scan_world.vantages[0].asn, seed=3)
    service.run(NOW, 4)
    return service


class TestTrieMatchesNaiveScan:
    def test_aliased_prefixes_detected(self, service):
        # The fixture world must actually exercise the alias machinery.
        assert service.aliased_prefixes

    def test_every_responsive_address_agrees(self, service, scan_world):
        prefixes = service.aliased_prefixes
        addresses = {
            address
            for snapshot in service.snapshots
            for address in snapshot.responsive
        }
        assert addresses
        for address in addresses:
            assert service.is_aliased(address) == naive_is_aliased(
                prefixes, address
            )

    def test_aliased_space_agrees(self, service):
        # Addresses *inside* each aliased prefix answer True both ways.
        for prefix in service.aliased_prefixes:
            for address in (prefix.first_address, prefix.last_address):
                assert service.is_aliased(address)
                assert naive_is_aliased(service.aliased_prefixes, address)

    def test_published_responsive_list_is_alias_free(self, service):
        for snapshot in service.snapshots:
            for address in snapshot.responsive:
                assert not service.is_aliased(address)


class TestIncrementalMaintenance:
    def test_trie_grows_with_the_alias_list(self, scan_world):
        service = HitlistService(
            scan_world, scan_world.vantages[0].asn, seed=3
        )
        for week in range(3):
            service.run_week(week, NOW + week * WEEK)
            assert len(service._alias_trie) == len(service.aliased_prefixes)
            for prefix in service.aliased_prefixes:
                assert service._alias_trie.exact(prefix) is True

    def test_unaliased_address_is_clean(self, service):
        # Documentation space is never part of the simulated topology.
        assert not service.is_aliased((0x20010DB8 << 96) | 0xDEAD)
