"""Shared fixtures for scan-layer tests: one small deterministic world."""

import pytest

from repro.world import CAMPAIGN_EPOCH, WorldConfig, build_world

NOW = CAMPAIGN_EPOCH + 3600.0


@pytest.fixture(scope="session")
def scan_world():
    return build_world(
        WorldConfig(
            seed=23,
            n_fixed_ases=8,
            n_cellular_ases=4,
            n_hosting_ases=4,
            n_home_networks=80,
            n_cellular_subscribers=40,
            n_hosting_networks=10,
        )
    )
