"""Tests for repro.scan.icmpv6 — RFC 4443 wire format and checksums."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.addr.ipv6 import parse
from repro.scan.icmpv6 import (
    ECHO_REPLY,
    ECHO_REQUEST,
    TIME_EXCEEDED,
    EchoMessage,
    TimeExceededMessage,
    icmpv6_checksum,
    parse_message,
)

SRC = parse("2001:db8::1")
DST = parse("2001:db8::2")

addresses = st.integers(min_value=0, max_value=(1 << 128) - 1)


class TestChecksum:
    def test_deterministic(self):
        assert icmpv6_checksum(SRC, DST, b"\x80\x00\x00\x00") == (
            icmpv6_checksum(SRC, DST, b"\x80\x00\x00\x00")
        )

    def test_depends_on_endpoints(self):
        message = b"\x80\x00\x00\x00\x00\x01\x00\x01"
        assert icmpv6_checksum(SRC, DST, message) != icmpv6_checksum(
            SRC, DST + 1, message
        )

    def test_odd_length_padded(self):
        # Must not raise and must differ from the even-length variant.
        a = icmpv6_checksum(SRC, DST, b"\x80\x00\x00\x00\xab")
        b = icmpv6_checksum(SRC, DST, b"\x80\x00\x00\x00")
        assert a != b

    def test_never_zero_on_wire(self):
        # Ones-complement arithmetic maps 0 to 0xFFFF.
        assert icmpv6_checksum(0, 0, b"") != 0

    def test_rejects_bad_addresses(self):
        with pytest.raises(ValueError):
            icmpv6_checksum(1 << 128, 0, b"")

    @given(addresses, addresses, st.binary(max_size=64))
    def test_verification_identity(self, source, destination, payload):
        # A packed message always verifies against its own endpoints:
        # inserting the computed checksum then re-checksumming the
        # zeroed message reproduces it.
        message = b"\x80\x00\x00\x00" + payload
        checksum = icmpv6_checksum(source, destination, message)
        wire = message[:2] + checksum.to_bytes(2, "big") + message[4:]
        zeroed = wire[:2] + b"\x00\x00" + wire[4:]
        assert icmpv6_checksum(source, destination, zeroed) == checksum


class TestEchoMessage:
    def test_pack_structure(self):
        wire = EchoMessage(True, 0x1234, 0x0001, b"zmap").pack(SRC, DST)
        assert wire[0] == ECHO_REQUEST
        assert wire[1] == 0
        assert wire[4:8] == b"\x12\x34\x00\x01"
        assert wire.endswith(b"zmap")

    def test_reply_mirrors_request(self):
        request = EchoMessage(True, 7, 9, b"state")
        reply = request.reply()
        assert not reply.is_request
        assert (reply.identifier, reply.sequence, reply.payload) == (
            7, 9, b"state"
        )

    def test_reply_of_reply_rejected(self):
        with pytest.raises(ValueError):
            EchoMessage(False, 1, 1).reply()

    def test_field_validation(self):
        with pytest.raises(ValueError):
            EchoMessage(True, 1 << 16, 0)
        with pytest.raises(ValueError):
            EchoMessage(True, 0, -1)

    def test_roundtrip_with_verification(self):
        request = EchoMessage(True, 0xBEEF, 42, b"yarrp-ttl-7")
        wire = request.pack(SRC, DST)
        parsed = parse_message(wire, SRC, DST)
        assert parsed == request

    def test_reply_type_on_wire(self):
        wire = EchoMessage(False, 1, 2).pack(DST, SRC)
        assert wire[0] == ECHO_REPLY

    @given(
        st.integers(min_value=0, max_value=0xFFFF),
        st.integers(min_value=0, max_value=0xFFFF),
        st.binary(max_size=32),
    )
    def test_roundtrip_property(self, identifier, sequence, payload):
        message = EchoMessage(True, identifier, sequence, payload)
        assert parse_message(message.pack(SRC, DST), SRC, DST) == message


class TestTimeExceeded:
    def test_roundtrip(self):
        invoking = EchoMessage(True, 1, 1).pack(SRC, DST)
        wire = TimeExceededMessage(invoking).pack(parse("2001:db8::99"), SRC)
        parsed = parse_message(wire, parse("2001:db8::99"), SRC)
        assert isinstance(parsed, TimeExceededMessage)
        assert parsed.invoking_packet == invoking

    def test_wire_type(self):
        wire = TimeExceededMessage(b"x").pack(SRC, DST)
        assert wire[0] == TIME_EXCEEDED

    def test_truncates_large_invoking_packet(self):
        wire = TimeExceededMessage(b"\xaa" * 5000).pack(SRC, DST)
        assert len(wire) <= 1232


class TestParseRejections:
    def test_too_short(self):
        with pytest.raises(ValueError):
            parse_message(b"\x80\x00\x00", SRC, DST)

    def test_corrupt_checksum(self):
        wire = bytearray(EchoMessage(True, 1, 1).pack(SRC, DST))
        wire[-1] ^= 0xFF if len(wire) > 8 else 0x01
        wire = bytearray(EchoMessage(True, 1, 1, b"p").pack(SRC, DST))
        wire[-1] ^= 0xFF
        with pytest.raises(ValueError):
            parse_message(bytes(wire), SRC, DST)

    def test_wrong_endpoints_fail_verification(self):
        wire = EchoMessage(True, 1, 1).pack(SRC, DST)
        with pytest.raises(ValueError):
            parse_message(wire, SRC, DST + 1)

    def test_verification_can_be_skipped(self):
        wire = EchoMessage(True, 1, 1).pack(SRC, DST)
        parsed = parse_message(wire, SRC, DST + 1, verify=False)
        assert isinstance(parsed, EchoMessage)

    def test_unknown_type(self):
        wire = bytearray(EchoMessage(True, 1, 1).pack(SRC, DST))
        wire[0] = 200
        with pytest.raises(ValueError):
            parse_message(bytes(wire), SRC, DST, verify=False)

    def test_nonzero_echo_code(self):
        wire = bytearray(EchoMessage(True, 1, 1).pack(SRC, DST))
        wire[1] = 5
        with pytest.raises(ValueError):
            parse_message(bytes(wire), SRC, DST, verify=False)
