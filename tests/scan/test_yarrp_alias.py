"""Tests for repro.scan.yarrp and repro.scan.alias."""

import pytest

from repro.net.prefixes import Prefix, parse_prefix
from repro.scan.alias import AliasDetector, filter_aliased
from repro.scan.yarrp import Yarrp
from tests.scan.conftest import NOW


def vantage_asn(world):
    return sorted({v.asn for v in world.vantages})[0]


class TestYarrp:
    def test_trace_reaches_router(self, scan_world):
        router = sorted(scan_world.router_addresses)[0]
        yarrp = Yarrp(scan_world, vantage_asn(scan_world))
        result = yarrp.trace(router, NOW)
        assert result.destination_reached
        # Hops are along the AS path; some ASes have infra space.
        assert isinstance(result.hops, tuple)

    def test_trace_unrouted_target(self, scan_world):
        yarrp = Yarrp(scan_world, vantage_asn(scan_world))
        result = yarrp.trace(0x20010DB8 << 96, NOW)
        assert not result.destination_reached
        assert result.hops == ()

    def test_trace_unresponsive_target_still_reveals_hops(self, scan_world):
        # An unallocated address in a distant normal AS: destination
        # unreachable but transit hops respond.
        normal = next(
            p for p in scan_world.profiles.values()
            if not p.aliased and not p.cellular
            and p.asn != vantage_asn(scan_world)
        )
        target = normal.customer_block.last_address - 7
        yarrp = Yarrp(scan_world, vantage_asn(scan_world))
        result = yarrp.trace(target, NOW)
        if not result.destination_reached:
            assert len(result.hops) >= 1

    def test_hops_are_router_interfaces(self, scan_world):
        router = sorted(scan_world.router_addresses)[-1]
        yarrp = Yarrp(scan_world, vantage_asn(scan_world))
        result = yarrp.trace(router, NOW)
        for hop in result.responsive_hops:
            assert hop in scan_world.router_addresses

    def test_trace_many_deduplicates(self, scan_world):
        router = sorted(scan_world.router_addresses)[0]
        yarrp = Yarrp(scan_world, vantage_asn(scan_world), seed=5)
        results = list(yarrp.trace_many([router, router], NOW))
        assert len(results) == 1

    def test_discovered_addresses_includes_target_and_hops(self, scan_world):
        routers = sorted(scan_world.router_addresses)[:5]
        yarrp = Yarrp(scan_world, vantage_asn(scan_world), seed=6)
        discovered = yarrp.discovered_addresses(routers, NOW)
        assert set(routers) <= discovered

    def test_rejects_unknown_vantage(self, scan_world):
        with pytest.raises(ValueError):
            Yarrp(scan_world, 99999)


class TestAliasDetector:
    def test_detects_aliased_block(self, scan_world):
        aliased = next(p for p in scan_world.profiles.values() if p.aliased)
        detector = AliasDetector(scan_world, seed=1)
        verdict = detector.check(aliased.customer_block, NOW)
        assert verdict.aliased
        assert verdict.responses == verdict.probes

    def test_normal_slash64_not_aliased(self, scan_world):
        normal = next(
            p for p in scan_world.profiles.values()
            if not p.aliased and not p.cellular
        )
        prefix = Prefix(normal.customer_block.network, 64)
        detector = AliasDetector(scan_world, seed=2)
        verdict = detector.check(prefix, NOW)
        assert not verdict.aliased

    def test_detect_many(self, scan_world):
        aliased = next(p for p in scan_world.profiles.values() if p.aliased)
        normal = next(
            p for p in scan_world.profiles.values()
            if not p.aliased and not p.cellular
        )
        prefixes = [aliased.customer_block, Prefix(normal.customer_block.network, 64)]
        detector = AliasDetector(scan_world, seed=3)
        result = detector.aliased_prefixes(prefixes, NOW)
        assert result == {aliased.customer_block}

    def test_threshold_validation(self, scan_world):
        with pytest.raises(ValueError):
            AliasDetector(scan_world, probes_per_prefix=0)
        with pytest.raises(ValueError):
            AliasDetector(scan_world, threshold=0.0)
        with pytest.raises(ValueError):
            AliasDetector(scan_world, threshold=1.5)

    def test_deterministic(self, scan_world):
        aliased = next(p for p in scan_world.profiles.values() if p.aliased)
        a = AliasDetector(scan_world, seed=9).check(aliased.customer_block, NOW)
        b = AliasDetector(scan_world, seed=9).check(aliased.customer_block, NOW)
        assert a == b


class TestFilterAliased:
    def test_drops_covered(self):
        aliased = [parse_prefix("2001:db8::/32")]
        addresses = [
            (0x20010DB8 << 96) | 1,   # inside
            (0x20010DB9 << 96) | 1,   # outside
        ]
        kept = filter_aliased(addresses, aliased)
        assert kept == [(0x20010DB9 << 96) | 1]

    def test_empty_alias_list_keeps_all(self):
        addresses = [1, 2, 3]
        assert filter_aliased(addresses, []) == addresses
