"""Tests for repro.scan.probes and repro.scan.zmap6."""

import pytest

from repro.scan.probes import Protocol, probe_once
from repro.scan.zmap6 import ZMap6
from repro.world import DeviceType, ResponderKind
from tests.scan.conftest import NOW


def find_device_address(world, predicate, when=NOW, firewalled=None):
    for network in world.networks.values():
        if network.profile.aliased:
            continue
        if firewalled is not None and network.firewalled != firewalled:
            continue
        for device in network.present_devices(when):
            if predicate(device):
                return network.device_address(device, when), device
    raise AssertionError("no matching device in world")


class TestProbeOnce:
    def test_icmp_hits_live_device(self, scan_world):
        address, device = find_device_address(
            scan_world,
            lambda d: d.device_type is DeviceType.CPE_ROUTER,
        )
        result = probe_once(scan_world, address, NOW, Protocol.ICMPV6)
        assert result.responsive
        assert result.responder_kind is ResponderKind.DEVICE

    def test_icmp_miss_unrouted(self, scan_world):
        result = probe_once(scan_world, 0x20010DB8 << 96, NOW, Protocol.ICMPV6)
        assert not result.responsive
        assert result.responder_kind is None

    def test_tcp_requires_service_device(self, scan_world):
        # A non-infrastructure client answering ICMP must not answer TCP.
        address, device = find_device_address(
            scan_world,
            lambda d: not d.device_type.is_infrastructure,
            firewalled=False,
        )
        icmp = probe_once(scan_world, address, NOW, Protocol.ICMPV6)
        tcp = probe_once(scan_world, address, NOW, Protocol.TCP80)
        assert icmp.responsive
        assert not tcp.responsive

    def test_tcp_hits_server(self, scan_world):
        address, _ = find_device_address(
            scan_world, lambda d: d.device_type is DeviceType.SERVER
        )
        assert probe_once(scan_world, address, NOW, Protocol.TCP443).responsive

    def test_router_ignores_tcp(self, scan_world):
        router = sorted(scan_world.router_addresses)[0]
        assert probe_once(scan_world, router, NOW, Protocol.ICMPV6).responsive
        assert not probe_once(scan_world, router, NOW, Protocol.TCP80).responsive

    def test_alias_answers_all_protocols(self, scan_world):
        aliased = next(
            p for p in scan_world.profiles.values() if p.aliased
        )
        target = aliased.customer_block.network | 0xABCDEF
        for protocol in Protocol:
            result = probe_once(scan_world, target, NOW, protocol)
            assert result.responsive
            assert result.responder_kind is ResponderKind.ALIAS


class TestZMap6:
    def test_scan_counts_and_dedup(self, scan_world):
        router = sorted(scan_world.router_addresses)[0]
        scanner = ZMap6(scan_world, seed=1)
        results = scanner.scan([router, router, router + 1], NOW)
        assert len(results) == 2
        assert scanner.last_stats.sent == 2
        assert scanner.last_stats.duplicates_suppressed == 1
        assert scanner.last_stats.responsive >= 1
        assert 0.0 <= scanner.last_stats.hit_rate <= 1.0

    def test_scan_results_address_complete(self, scan_world):
        targets = sorted(scan_world.router_addresses)[:10]
        scanner = ZMap6(scan_world, seed=2)
        results = scanner.scan(targets, NOW)
        assert {result.target for result in results} == set(targets)
        assert all(result.responsive for result in results)

    def test_shuffle_differs_across_scans_but_results_agree(self, scan_world):
        targets = sorted(scan_world.router_addresses)[:10]
        scanner = ZMap6(scan_world, seed=3)
        first = scanner.scan(targets, NOW)
        second = scanner.scan(targets, NOW)
        assert {r.target: r.responsive for r in first} == {
            r.target: r.responsive for r in second
        }

    def test_responsive_addresses_multiprotocol(self, scan_world):
        server_address, _ = find_device_address(
            scan_world, lambda d: d.device_type is DeviceType.SERVER
        )
        router = sorted(scan_world.router_addresses)[0]
        scanner = ZMap6(scan_world, seed=4)
        responsive = scanner.responsive_addresses(
            [server_address, router], NOW,
            protocols=(Protocol.ICMPV6, Protocol.TCP80),
        )
        assert Protocol.ICMPV6 in responsive[server_address]
        assert Protocol.TCP80 in responsive[server_address]
        assert responsive[router] == [Protocol.ICMPV6]

    def test_empty_scan(self, scan_world):
        scanner = ZMap6(scan_world)
        assert scanner.scan([], NOW) == []
        assert scanner.last_stats.hit_rate == 0.0


class TestZMap6WireFidelity:
    def test_same_results_as_fast_path(self, scan_world):
        targets = sorted(scan_world.router_addresses)[:15]
        fast = ZMap6(scan_world, seed=7)
        wire = ZMap6(scan_world, seed=7, wire_fidelity=True)
        fast_results = {r.target: r.responsive for r in fast.scan(targets, NOW)}
        wire_results = {r.target: r.responsive for r in wire.scan(targets, NOW)}
        assert fast_results == wire_results

    def test_wire_mode_only_affects_icmp(self, scan_world):
        targets = sorted(scan_world.router_addresses)[:5]
        wire = ZMap6(scan_world, seed=7, wire_fidelity=True)
        results = wire.scan(targets, NOW, Protocol.TCP80)
        assert all(not r.responsive for r in results)

    def test_custom_source_address(self, scan_world):
        scanner = ZMap6(
            scan_world, seed=7, wire_fidelity=True,
            source_address=(0x20010DB8 << 96) | 0xFACE,
        )
        targets = sorted(scan_world.router_addresses)[:3]
        assert any(r.responsive for r in scanner.scan(targets, NOW))
