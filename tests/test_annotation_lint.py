"""Guard against ``arg: int = None``-style annotation lies.

A parameter annotated with a plain (non-Optional) type but defaulted to
``None`` misleads every reader and type checker (``ZMap6.__init__`` once
declared ``source_address: int = None``).  This walks every function
signature in the package via :mod:`ast` and fails on any parameter whose
default is ``None`` while its annotation admits no ``None``.
"""

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Annotation spellings that admit None.
_NULLABLE_MARKERS = ("Optional", "None", "Any", "object")


def _annotation_admits_none(annotation: ast.expr) -> bool:
    text = ast.dump(annotation)
    return any(marker in text for marker in _NULLABLE_MARKERS)


def _violations_in(path: Path):
    tree = ast.parse(path.read_text(), filename=str(path))
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        arguments = node.args
        positional = arguments.posonlyargs + arguments.args
        pairs = []
        defaults = arguments.defaults
        if defaults:
            pairs.extend(zip(positional[-len(defaults):], defaults))
        pairs.extend(
            (argument, default)
            for argument, default in zip(
                arguments.kwonlyargs, arguments.kw_defaults
            )
            if default is not None
        )
        for argument, default in pairs:
            if not (
                isinstance(default, ast.Constant) and default.value is None
            ):
                continue
            if argument.annotation is None:
                continue
            if _annotation_admits_none(argument.annotation):
                continue
            yield (
                f"{path.relative_to(SRC.parent)}:{argument.lineno} "
                f"{node.name}({argument.arg}: "
                f"{ast.unparse(argument.annotation)} = None)"
            )


def test_no_bare_none_defaults_on_non_optional_annotations():
    violations = [
        violation
        for path in sorted(SRC.rglob("*.py"))
        for violation in _violations_in(path)
    ]
    assert not violations, (
        "parameters defaulted to None must be annotated Optional[...]:\n"
        + "\n".join(violations)
    )


def test_lint_catches_the_original_bug():
    source = "def f(source_address: int = None): pass\n"
    tree = ast.parse(source)
    function = tree.body[0]
    argument = function.args.args[0]
    default = function.args.defaults[0]
    assert isinstance(default, ast.Constant) and default.value is None
    assert not _annotation_admits_none(argument.annotation)
