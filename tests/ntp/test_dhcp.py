"""Tests for repro.ntp.dhcp — RFC 5908 NTP option codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.addr.ipv6 import parse
from repro.ntp.dhcp import (
    NTP_SUBOPTION_SRV_ADDR,
    OPTION_NTP_SERVER,
    NTPMulticastAddress,
    NTPServerAddress,
    NTPServerFQDN,
    encode_fqdn,
    encode_ntp_option,
    parse_fqdn,
    parse_ntp_option,
)

labels = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=20
)
domain_names = st.lists(labels, min_size=1, max_size=5).map(".".join)


class TestFQDN:
    def test_encode_known(self):
        assert encode_fqdn("pool.ntp.org") == (
            b"\x04pool\x03ntp\x03org\x00"
        )

    def test_trailing_dot_accepted(self):
        assert encode_fqdn("ntp.org.") == encode_fqdn("ntp.org")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            encode_fqdn("")
        with pytest.raises(ValueError):
            encode_fqdn(".")

    def test_rejects_long_label(self):
        with pytest.raises(ValueError):
            encode_fqdn("a" * 64 + ".org")

    def test_rejects_empty_label(self):
        with pytest.raises(ValueError):
            encode_fqdn("a..b")

    def test_parse_rejects_truncation(self):
        with pytest.raises(ValueError):
            parse_fqdn(b"\x04poo")
        with pytest.raises(ValueError):
            parse_fqdn(b"\x04pool")  # missing root

    def test_parse_rejects_trailing_bytes(self):
        with pytest.raises(ValueError):
            parse_fqdn(b"\x03ntp\x00extra")

    @given(domain_names)
    def test_roundtrip(self, name):
        assert parse_fqdn(encode_fqdn(name)) == name


class TestSuboptions:
    def test_server_address_encode(self):
        address = parse("2001:db8::123")
        wire = NTPServerAddress(address).encode()
        assert wire[:4] == bytes([0, NTP_SUBOPTION_SRV_ADDR, 0, 16])
        assert int.from_bytes(wire[4:], "big") == address

    def test_multicast_requires_ff00(self):
        NTPMulticastAddress(parse("ff05::101"))
        with pytest.raises(ValueError):
            NTPMulticastAddress(parse("2001:db8::1"))

    def test_fqdn_validates_eagerly(self):
        with pytest.raises(ValueError):
            NTPServerFQDN("")

    def test_address_range(self):
        with pytest.raises(ValueError):
            NTPServerAddress(1 << 128)


class TestOptionRoundtrip:
    def test_single_address(self):
        suboptions = [NTPServerAddress(parse("2001:db8::1"))]
        assert parse_ntp_option(encode_ntp_option(suboptions)) == suboptions

    def test_mixed_suboptions(self):
        suboptions = [
            NTPServerAddress(parse("2001:db8::1")),
            NTPServerFQDN("android.pool.ntp.org"),
            NTPMulticastAddress(parse("ff05::101")),
        ]
        assert parse_ntp_option(encode_ntp_option(suboptions)) == suboptions

    def test_option_code_in_frame(self):
        wire = encode_ntp_option([NTPServerFQDN("ntp.org")])
        assert int.from_bytes(wire[:2], "big") == OPTION_NTP_SERVER

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            encode_ntp_option([])

    def test_parse_rejects_wrong_code(self):
        wire = bytearray(encode_ntp_option([NTPServerFQDN("ntp.org")]))
        wire[1] = 23  # DNS servers option
        with pytest.raises(ValueError):
            parse_ntp_option(bytes(wire))

    def test_parse_rejects_length_mismatch(self):
        wire = encode_ntp_option([NTPServerFQDN("ntp.org")])
        with pytest.raises(ValueError):
            parse_ntp_option(wire + b"\x00")
        with pytest.raises(ValueError):
            parse_ntp_option(wire[:-1])

    def test_parse_rejects_unknown_suboption(self):
        body = bytes([0, 9, 0, 2, 0xAB, 0xCD])  # suboption code 9
        frame = bytes([0, OPTION_NTP_SERVER, 0, len(body)]) + body
        with pytest.raises(ValueError):
            parse_ntp_option(frame)

    def test_parse_rejects_bad_address_length(self):
        body = bytes([0, NTP_SUBOPTION_SRV_ADDR, 0, 4]) + b"\x00" * 4
        frame = bytes([0, OPTION_NTP_SERVER, 0, len(body)]) + body
        with pytest.raises(ValueError):
            parse_ntp_option(frame)

    def test_parse_rejects_truncated(self):
        with pytest.raises(ValueError):
            parse_ntp_option(b"\x00")

    @given(
        st.lists(
            st.one_of(
                st.integers(min_value=0, max_value=(1 << 128) - 1).map(
                    NTPServerAddress
                ),
                domain_names.map(NTPServerFQDN),
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_roundtrip_property(self, suboptions):
        assert parse_ntp_option(encode_ntp_option(suboptions)) == suboptions
