"""Tests for repro.ntp.timestamps — NTP fixed-point conversions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ntp.timestamps import (
    NTP_FRACTION,
    NTP_UNIX_OFFSET,
    ntp_short,
    ntp_to_unix,
    short_to_seconds,
    unix_to_ntp,
)


class TestUnixToNtp:
    def test_unix_epoch(self):
        # 1970-01-01 is exactly NTP_UNIX_OFFSET seconds into era 0.
        assert unix_to_ntp(0.0) == NTP_UNIX_OFFSET << 32

    def test_fraction_half_second(self):
        value = unix_to_ntp(0.5)
        assert value & 0xFFFFFFFF == NTP_FRACTION // 2

    def test_rounding_carry(self):
        # A fraction that rounds to 1.0 must carry into the seconds.
        value = unix_to_ntp(0.9999999999)
        assert value & 0xFFFFFFFF == 0
        assert value >> 32 == NTP_UNIX_OFFSET + 1

    def test_prime_epoch_boundary(self):
        assert unix_to_ntp(-NTP_UNIX_OFFSET) == 0
        with pytest.raises(ValueError):
            unix_to_ntp(-NTP_UNIX_OFFSET - 1)

    def test_era_wrap(self):
        # Era 0 ends in 2036; times past it wrap modulo 2**32 seconds.
        era_end_unix = (1 << 32) - NTP_UNIX_OFFSET
        assert unix_to_ntp(float(era_end_unix)) == 0

    @given(st.floats(min_value=0, max_value=2_000_000_000))
    def test_roundtrip_within_precision(self, unix_time):
        recovered = ntp_to_unix(unix_to_ntp(unix_time))
        assert recovered == pytest.approx(unix_time, abs=1e-9 * max(unix_time, 1) + 1e-6)


class TestNtpToUnix:
    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            ntp_to_unix(-1)
        with pytest.raises(ValueError):
            ntp_to_unix(1 << 64)

    def test_era_1(self):
        era_end_unix = (1 << 32) - NTP_UNIX_OFFSET
        assert ntp_to_unix(0, era=1) == pytest.approx(era_end_unix)


class TestNtpShort:
    def test_zero(self):
        assert ntp_short(0.0) == 0
        assert short_to_seconds(0) == 0.0

    def test_known_value(self):
        assert ntp_short(1.0) == 1 << 16
        assert short_to_seconds(1 << 16) == 1.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ntp_short(-0.001)

    def test_rejects_too_large(self):
        with pytest.raises(ValueError):
            ntp_short(70000.0)

    def test_short_to_seconds_range(self):
        with pytest.raises(ValueError):
            short_to_seconds(1 << 32)
        with pytest.raises(ValueError):
            short_to_seconds(-1)

    @given(st.floats(min_value=0, max_value=1000))
    def test_roundtrip(self, seconds):
        assert short_to_seconds(ntp_short(seconds)) == pytest.approx(
            seconds, abs=1 / (1 << 16)
        )
