"""Tests for repro.ntp.pool — membership and geo DNS resolution."""

import pytest

from repro.addr import ipv6
from repro.ntp.client import TimeSource
from repro.ntp.pool import COUNTRY_CONTINENT, NTPPool, continent_of
from repro.ntp.server import StratumTwoServer


def make_server(host, country):
    return StratumTwoServer(ipv6.parse(f"2001:db8::{host}"), country)


def make_pool(*countries):
    pool = NTPPool()
    for index, country in enumerate(countries, start=1):
        pool.join(make_server(index, country))
    return pool


class TestContinentMap:
    def test_known_countries(self):
        assert continent_of("DE") == "EU"
        assert continent_of("IN") == "AS"
        assert continent_of("BR") == "SA"
        assert continent_of("US") == "NA"
        assert continent_of("ZA") == "AF"
        assert continent_of("AU") == "OC"

    def test_unknown_country(self):
        assert continent_of("XX") is None

    def test_paper_vantage_countries_covered(self):
        # The paper ran servers in these 20 countries (§3).
        vantage_countries = [
            "US", "JP", "DE", "AU", "BH", "BR", "BG", "HK", "IN", "ID",
            "MX", "NL", "PL", "SG", "ZA", "KR", "ES", "SE", "TW", "GB",
        ]
        for country in vantage_countries:
            assert country in COUNTRY_CONTINENT, country


class TestMembership:
    def test_join_and_len(self):
        pool = make_pool("US", "DE")
        assert len(pool) == 2
        assert len(pool.members()) == 2

    def test_duplicate_join_rejected(self):
        pool = NTPPool()
        server = make_server(1, "US")
        pool.join(server)
        with pytest.raises(ValueError):
            pool.join(server)

    def test_leave(self):
        pool = NTPPool()
        server = make_server(1, "US")
        pool.join(server)
        pool.leave(server.address)
        assert len(pool) == 0
        assert pool.resolve(TimeSource.POOL, "US") == []

    def test_leave_unknown_rejected(self):
        with pytest.raises(KeyError):
            NTPPool().leave(1)

    def test_member_lookup(self):
        pool = NTPPool()
        server = make_server(1, "US")
        pool.join(server)
        assert pool.member(server.address) is server
        assert pool.member(999) is None


class TestResolution:
    def test_same_country_preferred(self):
        pool = make_pool("US", "DE", "DE")
        answer = pool.resolve(TimeSource.POOL, "DE")
        servers = {pool.member(address).country for address in answer}
        assert servers == {"DE"}

    def test_same_continent_fallback(self):
        pool = make_pool("DE", "US")
        # French client: no FR member, falls back to EU members.
        answer = pool.resolve(TimeSource.POOL, "FR")
        assert {pool.member(a).country for a in answer} == {"DE"}

    def test_world_fallback(self):
        pool = make_pool("US", "DE")
        # South-African client with no AF members gets the world tier.
        answer = pool.resolve(TimeSource.POOL, "ZA")
        assert len(answer) == 2

    def test_unknown_country_gets_world(self):
        pool = make_pool("US")
        assert len(pool.resolve(TimeSource.POOL, "XX")) == 1

    def test_non_pool_source_empty(self):
        pool = make_pool("US")
        assert pool.resolve(TimeSource.TIME_APPLE, "US") == []
        assert pool.resolve(TimeSource.TIME_ANDROID, "US") == []

    def test_vendor_zone_resolves(self):
        pool = make_pool("US")
        assert len(pool.resolve(TimeSource.POOL_ANDROID, "US")) == 1

    def test_answer_size_cap(self):
        pool = make_pool(*(["US"] * 10))
        assert len(pool.resolve(TimeSource.POOL, "US")) == NTPPool.ANSWER_SIZE
        assert len(pool.resolve(TimeSource.POOL, "US", count=2)) == 2

    def test_round_robin_rotates(self):
        pool = make_pool(*(["US"] * 8))
        first = pool.resolve(TimeSource.POOL, "US")
        second = pool.resolve(TimeSource.POOL, "US")
        assert first != second
        # Over two answers of 4 from 8 members, all members appear.
        assert len(set(first) | set(second)) == 8

    def test_rotation_covers_all_members_evenly(self):
        pool = make_pool(*(["US"] * 5))
        seen = []
        for _ in range(5):
            seen.extend(pool.resolve(TimeSource.POOL, "US"))
        # 5 answers x 4 records over 5 members: each appears 4 times.
        from collections import Counter

        counts = Counter(seen)
        assert set(counts.values()) == {4}

    def test_empty_pool(self):
        assert NTPPool().resolve(TimeSource.POOL, "US") == []


class TestRotationFilter:
    def test_filter_excludes_ejected_members(self):
        pool = make_pool("US", "US", "US")
        ejected = pool.members()[0].address
        pool.set_rotation_filter(
            lambda address, when: address != ejected
        )
        for _ in range(6):
            answer = pool.resolve(TimeSource.POOL, "US", now=100.0)
            assert ejected not in answer
            assert answer

    def test_filter_only_applies_with_time(self):
        pool = make_pool("US", "US")
        pool.set_rotation_filter(lambda address, when: False)
        # Timeless resolution (membership views) is unaffected.
        assert pool.resolve(TimeSource.POOL, "US") != []
        assert pool.resolve(TimeSource.POOL, "US", now=5.0) == []

    def test_filter_is_time_aware(self):
        pool = make_pool("US", "US")
        target = pool.members()[0].address
        pool.set_rotation_filter(
            lambda address, when: address != target or when >= 50.0
        )
        early = [
            a
            for _ in range(4)
            for a in pool.resolve(TimeSource.POOL, "US", now=10.0)
        ]
        late = [
            a
            for _ in range(4)
            for a in pool.resolve(TimeSource.POOL, "US", now=60.0)
        ]
        assert target not in early
        assert target in late

    def test_filter_removal(self):
        pool = make_pool("US", "US")
        pool.set_rotation_filter(lambda address, when: False)
        assert pool.resolve(TimeSource.POOL, "US", now=1.0) == []
        pool.set_rotation_filter(None)
        assert pool.resolve(TimeSource.POOL, "US", now=1.0) != []

    def test_membership_unaffected_by_filter(self):
        pool = make_pool("US", "US")
        pool.set_rotation_filter(lambda address, when: False)
        assert len(pool.members()) == 2
        candidates, _ = pool.tier_members("US")
        assert len(candidates) == 2
