"""Tests for repro.ntp.dns and the pool's wire-format DNS interface."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.addr.ipv6 import parse
from repro.ntp.client import TimeSource
from repro.ntp.dns import (
    DNSQuery,
    build_query,
    build_response,
    parse_query,
    parse_response,
)
from repro.ntp.pool import NTPPool
from repro.ntp.server import StratumTwoServer

addresses = st.lists(
    st.integers(min_value=0, max_value=(1 << 128) - 1), max_size=6
)


class TestQueryRoundtrip:
    def test_roundtrip(self):
        wire = build_query("pool.ntp.org", qid=0x1234)
        query = parse_query(wire)
        assert query == DNSQuery(qid=0x1234, qname="pool.ntp.org")

    def test_rejects_bad_qid(self):
        with pytest.raises(ValueError):
            build_query("ntp.org", qid=1 << 16)

    def test_rejects_response_as_query(self):
        query = DNSQuery(1, "pool.ntp.org")
        wire = build_response(query, [1])
        with pytest.raises(ValueError):
            parse_query(wire)

    def test_rejects_truncated(self):
        with pytest.raises(ValueError):
            parse_query(b"\x00\x01\x00")

    def test_rejects_compression_pointers(self):
        wire = bytearray(build_query("pool.ntp.org", 1))
        wire[12] = 0xC0  # pointer where a label length belongs
        with pytest.raises(ValueError):
            parse_query(bytes(wire))

    @given(st.integers(min_value=0, max_value=0xFFFF))
    def test_qid_preserved(self, qid):
        assert parse_query(build_query("android.pool.ntp.org", qid)).qid == qid


class TestResponseRoundtrip:
    def test_roundtrip(self):
        query = DNSQuery(7, "pool.ntp.org")
        answer_addresses = [parse("2001:db8::1"), parse("2001:db8::2")]
        wire = build_response(query, answer_addresses, ttl=150)
        response = parse_response(wire)
        assert response.qid == 7
        assert response.qname == "pool.ntp.org"
        assert list(response.addresses) == answer_addresses
        assert response.ttl == 150

    def test_empty_answer(self):
        response = parse_response(build_response(DNSQuery(1, "ntp.org"), []))
        assert response.addresses == ()

    def test_rejects_query_as_response(self):
        with pytest.raises(ValueError):
            parse_response(build_query("ntp.org", 1))

    def test_rejects_trailing_bytes(self):
        wire = build_response(DNSQuery(1, "ntp.org"), [5])
        with pytest.raises(ValueError):
            parse_response(wire + b"\x00")

    def test_rejects_bad_ttl(self):
        with pytest.raises(ValueError):
            build_response(DNSQuery(1, "ntp.org"), [1], ttl=-1)

    def test_rejects_bad_address(self):
        with pytest.raises(ValueError):
            build_response(DNSQuery(1, "ntp.org"), [1 << 128])

    @given(addresses, st.integers(min_value=0, max_value=(1 << 31) - 1))
    def test_roundtrip_property(self, answer, ttl):
        query = DNSQuery(9, "debian.pool.ntp.org")
        response = parse_response(build_response(query, answer, ttl))
        assert list(response.addresses) == answer
        if answer:
            assert response.ttl == ttl


class TestPoolDNSInterface:
    def _pool(self):
        pool = NTPPool()
        for host, country in enumerate(["US", "US", "DE"], start=1):
            pool.join(
                StratumTwoServer(parse(f"2001:db8::{host}"), country)
            )
        return pool

    def test_answers_pool_zone(self):
        pool = self._pool()
        wire = pool.handle_dns_query(
            build_query("pool.ntp.org", 42), "US"
        )
        assert wire is not None
        response = parse_response(wire)
        assert response.qid == 42
        assert response.addresses
        member_addresses = {server.address for server in pool.members()}
        assert set(response.addresses) <= member_addresses

    def test_vendor_zone_answered(self):
        pool = self._pool()
        wire = pool.handle_dns_query(
            build_query("android.pool.ntp.org", 1), "DE"
        )
        assert wire is not None
        assert parse_response(wire).addresses

    def test_non_pool_name_unanswered(self):
        pool = self._pool()
        assert pool.handle_dns_query(
            build_query("time.apple.com", 1), "US"
        ) is None

    def test_unknown_name_unanswered(self):
        pool = self._pool()
        assert pool.handle_dns_query(
            build_query("example.org", 1), "US"
        ) is None

    def test_garbage_unanswered(self):
        pool = self._pool()
        assert pool.handle_dns_query(b"\x00" * 5, "US") is None

    def test_round_robin_visible_on_the_wire(self):
        pool = NTPPool()
        for host in range(1, 9):
            pool.join(StratumTwoServer(parse(f"2001:db8::{host}"), "US"))
        first = parse_response(
            pool.handle_dns_query(build_query("pool.ntp.org", 1), "US")
        )
        second = parse_response(
            pool.handle_dns_query(build_query("pool.ntp.org", 2), "US")
        )
        assert set(first.addresses) != set(second.addresses)
