"""Tests for repro.ntp.server and repro.ntp.client."""

import pytest

from repro.addr import ipv6
from repro.ntp.client import (
    OperatingSystem,
    TimeSource,
    build_request,
    time_source_for,
    validate_response,
)
from repro.ntp.packet import Mode, NTPPacket
from repro.ntp.server import StratumTwoServer
from repro.ntp.timestamps import ntp_to_unix, unix_to_ntp

SERVER_ADDR = ipv6.parse("2001:db8:100::53")
CLIENT_ADDR = ipv6.parse("2001:db8:200::1234")


def make_server(sink=None):
    return StratumTwoServer(SERVER_ADDR, "US", sink=sink)


class TestServerHandling:
    def test_valid_request_gets_response(self):
        server = make_server()
        request = build_request(1000.0)
        response_bytes = server.handle_datagram(request.pack(), CLIENT_ADDR, 1000.05)
        assert response_bytes is not None
        response = NTPPacket.parse(response_bytes)
        assert response.mode is Mode.SERVER
        assert response.stratum == 2
        assert response.origin_timestamp == request.transmit_timestamp
        assert ntp_to_unix(response.transmit_timestamp) == pytest.approx(1000.05)

    def test_response_validates_client_side(self):
        server = make_server()
        request = build_request(1000.0)
        response = NTPPacket.parse(
            server.handle_datagram(request.pack(), CLIENT_ADDR, 1000.05)
        )
        assert validate_response(request, response)

    def test_malformed_dropped(self):
        server = make_server()
        assert server.handle_datagram(b"short", CLIENT_ADDR, 1.0) is None
        assert server.stats.malformed == 1
        assert server.stats.responses == 0

    def test_non_client_mode_dropped(self):
        server = make_server()
        packet = NTPPacket(mode=Mode.SERVER)
        assert server.handle_datagram(packet.pack(), CLIENT_ADDR, 1.0) is None
        assert server.stats.dropped_mode == 1

    def test_sink_records_source(self):
        observed = []
        server = make_server(
            sink=lambda addr, when, srv: observed.append((addr, when, srv))
        )
        request = build_request(5.0)
        server.handle_datagram(request.pack(), CLIENT_ADDR, 5.01)
        assert observed == [(CLIENT_ADDR, 5.01, server)]

    def test_sink_not_called_for_garbage(self):
        observed = []
        server = make_server(sink=lambda *args: observed.append(args))
        server.handle_datagram(b"\x00" * 10, CLIENT_ADDR, 1.0)
        assert observed == []

    def test_set_sink(self):
        server = make_server()
        observed = []
        server.set_sink(lambda addr, when, srv: observed.append(addr))
        server.handle_datagram(build_request(1.0).pack(), CLIENT_ADDR, 1.0)
        assert observed == [CLIENT_ADDR]

    def test_version_mirrors_client(self):
        server = make_server()
        request = build_request(1.0).with_fields(version=3)
        response = NTPPacket.parse(
            server.handle_datagram(request.pack(), CLIENT_ADDR, 1.0)
        )
        assert response.version == 3

    def test_stats_counts(self):
        server = make_server()
        server.handle_datagram(build_request(1.0).pack(), CLIENT_ADDR, 1.0)
        server.handle_datagram(build_request(2.0).pack(), CLIENT_ADDR, 2.0)
        server.handle_datagram(b"junk", CLIENT_ADDR, 3.0)
        assert server.stats.requests == 3
        assert server.stats.responses == 2

    def test_rejects_bad_country(self):
        with pytest.raises(ValueError):
            StratumTwoServer(SERVER_ADDR, "usa")

    @pytest.mark.parametrize(
        "datagram",
        [
            b"",
            b"short",
            b"\x00" * 47,  # one byte shy of a header
            "not bytes at all",
            None,
            12345,
            [0x23] * 48,
        ],
    )
    def test_any_garbage_counts_as_malformed(self, datagram):
        # The contract of the campaign hot loop: a vantage must survive
        # *anything* thrown at handle_datagram by counting it, never by
        # raising.
        server = make_server()
        assert server.handle_datagram(datagram, CLIENT_ADDR, 1.0) is None
        assert server.stats.malformed == 1
        assert server.stats.requests == 1
        assert server.stats.responses == 0

    def test_bit_flipped_request_never_raises(self):
        # Flip every single bit of a valid request in turn; each variant
        # must be served, mode-dropped, or counted malformed — the
        # counters always reconcile and nothing propagates.
        clean = build_request(1000.0).pack()
        server = make_server()
        for bit in range(len(clean) * 8):
            mangled = bytearray(clean)
            mangled[bit // 8] ^= 1 << (bit % 8)
            server.handle_datagram(bytes(mangled), CLIENT_ADDR, 1000.0)
        stats = server.stats
        assert stats.requests == len(clean) * 8
        assert stats.requests == (
            stats.responses + stats.malformed + stats.dropped_mode
        )


class TestClientConfig:
    @pytest.mark.parametrize(
        "os_family,expected",
        [
            (OperatingSystem.WINDOWS, TimeSource.TIME_WINDOWS),
            (OperatingSystem.MACOS, TimeSource.TIME_APPLE),
            (OperatingSystem.ANDROID_MODERN, TimeSource.TIME_ANDROID),
            (OperatingSystem.ANDROID_LEGACY, TimeSource.POOL_ANDROID),
            (OperatingSystem.LINUX_UBUNTU, TimeSource.POOL_UBUNTU),
            (OperatingSystem.IOT_GENERIC, TimeSource.POOL),
        ],
    )
    def test_defaults(self, os_family, expected):
        assert time_source_for(os_family) is expected

    def test_dhcp_override(self):
        assert (
            time_source_for(OperatingSystem.WINDOWS, TimeSource.POOL)
            is TimeSource.POOL
        )

    def test_pool_zone_predicate(self):
        assert TimeSource.POOL.is_pool_zone
        assert TimeSource.POOL_ANDROID.is_pool_zone
        assert not TimeSource.TIME_APPLE.is_pool_zone
        assert not TimeSource.TIME_ANDROID.is_pool_zone

    def test_modern_android_misses_pool(self):
        # The paper's stated blind spot: Android >= 8 doesn't hit the Pool.
        assert not time_source_for(OperatingSystem.ANDROID_MODERN).is_pool_zone


class TestValidateResponse:
    def _pair(self):
        request = build_request(100.0)
        response = NTPPacket(
            mode=Mode.SERVER,
            stratum=2,
            origin_timestamp=request.transmit_timestamp,
            transmit_timestamp=unix_to_ntp(100.05),
        )
        return request, response

    def test_valid(self):
        request, response = self._pair()
        assert validate_response(request, response)

    def test_origin_mismatch(self):
        request, response = self._pair()
        assert not validate_response(
            request, response.with_fields(origin_timestamp=1)
        )

    def test_unsynchronized_stratum(self):
        request, response = self._pair()
        assert not validate_response(request, response.with_fields(stratum=0))
        assert not validate_response(request, response.with_fields(stratum=16))

    def test_wrong_mode(self):
        request, response = self._pair()
        assert not validate_response(
            request, response.with_fields(mode=Mode.CLIENT)
        )
