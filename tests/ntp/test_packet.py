"""Tests for repro.ntp.packet — RFC 5905 header wire format."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ntp.packet import (
    LeapIndicator,
    Mode,
    NTPPacket,
    NTP_VERSION,
    PACKET_LENGTH,
)

timestamps = st.integers(min_value=0, max_value=(1 << 64) - 1)
shorts = st.integers(min_value=0, max_value=(1 << 32) - 1)


def packet_strategy():
    return st.builds(
        NTPPacket,
        leap=st.sampled_from(list(LeapIndicator)),
        version=st.integers(min_value=1, max_value=7),
        mode=st.sampled_from(list(Mode)),
        stratum=st.integers(min_value=0, max_value=255),
        poll=st.integers(min_value=-128, max_value=127),
        precision=st.integers(min_value=-128, max_value=127),
        root_delay=shorts,
        root_dispersion=shorts,
        reference_id=st.binary(min_size=4, max_size=4),
        reference_timestamp=timestamps,
        origin_timestamp=timestamps,
        receive_timestamp=timestamps,
        transmit_timestamp=timestamps,
    )


class TestPackParse:
    def test_length(self):
        assert len(NTPPacket().pack()) == PACKET_LENGTH

    def test_default_roundtrip(self):
        packet = NTPPacket()
        assert NTPPacket.parse(packet.pack()) == packet

    def test_first_byte_layout(self):
        packet = NTPPacket(
            leap=LeapIndicator.UNSYNCHRONIZED, version=4, mode=Mode.CLIENT
        )
        first = packet.pack()[0]
        assert first == (3 << 6) | (4 << 3) | 3

    def test_parse_short_datagram_rejected(self):
        with pytest.raises(ValueError):
            NTPPacket.parse(b"\x00" * 47)

    def test_parse_ignores_trailing_bytes(self):
        packet = NTPPacket(transmit_timestamp=12345)
        assert NTPPacket.parse(packet.pack() + b"extension") == packet

    def test_negative_precision_survives(self):
        packet = NTPPacket(precision=-23)
        assert NTPPacket.parse(packet.pack()).precision == -23

    @given(packet_strategy())
    def test_roundtrip_all_fields(self, packet):
        assert NTPPacket.parse(packet.pack()) == packet


class TestValidation:
    def test_rejects_bad_version(self):
        with pytest.raises(ValueError):
            NTPPacket(version=0)
        with pytest.raises(ValueError):
            NTPPacket(version=8)

    def test_rejects_bad_stratum(self):
        with pytest.raises(ValueError):
            NTPPacket(stratum=256)

    def test_rejects_bad_refid(self):
        with pytest.raises(ValueError):
            NTPPacket(reference_id=b"abc")

    def test_rejects_bad_timestamp(self):
        with pytest.raises(ValueError):
            NTPPacket(transmit_timestamp=1 << 64)

    def test_rejects_bad_short(self):
        with pytest.raises(ValueError):
            NTPPacket(root_delay=1 << 32)

    def test_rejects_bad_poll(self):
        with pytest.raises(ValueError):
            NTPPacket(poll=128)


class TestRequestPredicate:
    def test_client_mode_is_valid(self):
        assert NTPPacket(mode=Mode.CLIENT).is_valid_request()

    def test_server_mode_is_not(self):
        assert not NTPPacket(mode=Mode.SERVER).is_valid_request()

    def test_future_version_rejected(self):
        packet = NTPPacket(mode=Mode.CLIENT, version=NTP_VERSION + 1)
        assert not packet.is_valid_request()

    def test_v3_accepted(self):
        assert NTPPacket(mode=Mode.CLIENT, version=3).is_valid_request()


class TestWithFields:
    def test_replaces(self):
        packet = NTPPacket()
        changed = packet.with_fields(stratum=2, mode=Mode.SERVER)
        assert changed.stratum == 2
        assert changed.mode is Mode.SERVER
        assert packet.stratum == 0  # original untouched

    def test_validates(self):
        with pytest.raises(ValueError):
            NTPPacket().with_fields(stratum=999)
