"""Tests for repro.cli — the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.core import load_corpus
from repro.core.corpus import AddressCorpus
from repro.core.storage import save_corpus


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_study_defaults(self):
        args = build_parser().parse_args(["study"])
        assert args.seed == 7
        assert args.weeks == 31
        assert args.scale == "tiny"

    def test_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["study", "--scale", "galactic"])

    def test_release_args(self):
        args = build_parser().parse_args(
            ["release", "c.bin", "--output", "out.csv"]
        )
        assert args.corpus == "c.bin"
        assert args.output == "out.csv"

    def test_study_campaign_options(self):
        args = build_parser().parse_args(
            ["study", "--workers", "4", "--checkpoint", "c.ckpt", "--resume"]
        )
        assert args.workers == 4
        assert args.checkpoint == "c.ckpt"
        assert args.resume is True

    def test_campaign_option_defaults(self):
        args = build_parser().parse_args(["study"])
        assert args.workers == 1
        assert args.checkpoint is None
        assert args.resume is False
        assert args.faults is None
        assert args.max_shard_retries == 2

    def test_fault_and_retry_options(self):
        args = build_parser().parse_args(
            [
                "report",
                "--faults", "flap=0.2,loss=0.05,seed=9",
                "--max-shard-retries", "5",
            ]
        )
        assert args.faults == "flap=0.2,loss=0.05,seed=9"
        assert args.max_shard_retries == 5

    def test_metrics_and_log_level_options(self):
        args = build_parser().parse_args(
            ["--log-level", "debug", "study", "--metrics-out", "m.json"]
        )
        assert args.log_level == "debug"
        assert args.metrics_out == "m.json"

    def test_metrics_out_defaults_off(self):
        args = build_parser().parse_args(["report"])
        assert args.metrics_out is None
        assert args.log_level == "info"

    def test_rejects_unknown_log_level(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--log-level", "chatty", "study"])


@pytest.fixture(scope="module")
def study_dir(tmp_path_factory):
    output = tmp_path_factory.mktemp("cli-study")
    code = main(
        [
            "study",
            "--seed", "3",
            "--weeks", "10",
            "--scale", "tiny",
            "--output-dir", str(output),
        ]
    )
    assert code == 0
    return output


class TestStudyCommand:
    def test_saves_three_corpora(self, study_dir):
        names = sorted(path.name for path in study_dir.iterdir())
        assert names == [
            "caida-routed-48.corpus.bin",
            "ipv6-hitlist.corpus.bin",
            "ntp-pool.corpus.bin",
        ]

    def test_saved_corpora_load(self, study_dir):
        corpus = load_corpus(study_dir / "ntp-pool.corpus.bin")
        assert corpus.name == "ntp-pool"
        assert len(corpus) > 0

    def test_prints_table(self, study_dir, capsys):
        # The fixture already ran; re-run quickly to capture output.
        main(
            [
                "study", "--seed", "3", "--weeks", "10",
                "--scale", "tiny", "--output-dir", str(study_dir),
            ]
        )
        out = capsys.readouterr().out
        assert "ntp-pool" in out
        assert "Table 1" in out


class TestParallelStudyCommand:
    def test_sharded_study_matches_serial_bytes(
        self, study_dir, tmp_path
    ):
        # Same seed, sharded across 2 workers with checkpointing: the
        # saved NTP corpus must be byte-identical to the serial run's.
        output = tmp_path / "parallel"
        checkpoint = tmp_path / "ntp.ckpt"
        code = main(
            [
                "study",
                "--seed", "3",
                "--weeks", "10",
                "--scale", "tiny",
                "--output-dir", str(output),
                "--workers", "2",
                "--checkpoint", str(checkpoint),
            ]
        )
        assert code == 0
        serial = (study_dir / "ntp-pool.corpus.bin").read_bytes()
        sharded = (output / "ntp-pool.corpus.bin").read_bytes()
        assert serial == sharded
        assert checkpoint.exists()

    def test_resume_without_checkpoint_flag_exits(self, capsys):
        with pytest.raises(SystemExit):
            main(["study", "--resume"])

    def test_bad_faults_spec_exits(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["study", "--faults", "flap=not-a-number"])
        assert excinfo.value.code == 2
        assert "bad --faults spec" in capsys.readouterr().err

    def test_bad_max_shard_retries_exits(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["study", "--max-shard-retries", "-1"])
        assert excinfo.value.code == 2

    def test_faulty_study_runs_and_differs(self, study_dir, tmp_path):
        # A non-zero plan must complete end-to-end and perturb the NTP
        # corpus (while the active scanners are untouched by it).
        output = tmp_path / "faulty"
        code = main(
            [
                "study",
                "--seed", "3",
                "--weeks", "10",
                "--scale", "tiny",
                "--output-dir", str(output),
                "--faults", "flap=0.3,loss=0.1,corrupt=0.02,seed=9",
            ]
        )
        assert code == 0
        serial = (study_dir / "ntp-pool.corpus.bin").read_bytes()
        faulty = (output / "ntp-pool.corpus.bin").read_bytes()
        assert serial != faulty
        caida_serial = (study_dir / "caida-routed-48.corpus.bin").read_bytes()
        caida_faulty = (output / "caida-routed-48.corpus.bin").read_bytes()
        assert caida_serial == caida_faulty

    def test_zero_fault_spec_is_byte_identical(self, study_dir, tmp_path):
        output = tmp_path / "zero-faults"
        code = main(
            [
                "study",
                "--seed", "3",
                "--weeks", "10",
                "--scale", "tiny",
                "--output-dir", str(output),
                "--faults", "",
            ]
        )
        assert code == 0
        assert (study_dir / "ntp-pool.corpus.bin").read_bytes() == (
            output / "ntp-pool.corpus.bin"
        ).read_bytes()


class TestMetricsExport:
    def test_study_writes_json_snapshot(self, tmp_path):
        metrics_path = tmp_path / "metrics.json"
        code = main(
            [
                "study",
                "--seed", "3",
                "--weeks", "10",
                "--scale", "tiny",
                "--output-dir", str(tmp_path / "out"),
                "--metrics-out", str(metrics_path),
            ]
        )
        assert code == 0
        document = json.loads(metrics_path.read_text())
        assert document["format"] == "repro-metrics-v1"
        assert document["counters"]["repro_campaign_queries_total"] > 0
        assert "ntp-collection" in document["spans"]
        # The CLI's own stages are recorded too.
        assert "table1-comparison" in document["spans"]
        assert "save-corpora" in document["spans"]

    def test_report_writes_prometheus_text(self, tmp_path):
        metrics_path = tmp_path / "metrics.prom"
        code = main(
            [
                "report",
                "--seed", "3",
                "--weeks", "10",
                "--scale", "tiny",
                "--output", str(tmp_path / "report.txt"),
                "--metrics-out", str(metrics_path),
            ]
        )
        assert code == 0
        text = metrics_path.read_text()
        assert "# TYPE repro_campaign_queries_total counter" in text
        assert "repro_span_analysis_report_seconds_count 1" in text

    def test_log_level_gates_stderr_chatter(self, tmp_path, capsys):
        args = [
            "study",
            "--seed", "3",
            "--weeks", "10",
            "--scale", "tiny",
            "--output-dir", str(tmp_path / "out"),
        ]
        assert main(["--log-level", "error"] + args) == 0
        assert "world:" not in capsys.readouterr().err
        assert main(["--log-level", "info"] + args) == 0
        assert "world:" in capsys.readouterr().err


class TestAnalyzeCommand:
    def test_analyze_saved_corpus(self, study_dir, capsys):
        code = main(["analyze", str(study_dir / "ntp-pool.corpus.bin")])
        assert code == 0
        out = capsys.readouterr().out
        assert "seen once" in out
        assert "EUI-64" in out


class TestReleaseCommand:
    def test_release_roundtrip(self, study_dir, tmp_path, capsys):
        output = tmp_path / "release.csv"
        code = main(
            [
                "release",
                str(study_dir / "ntp-pool.corpus.bin"),
                "--output", str(output),
            ]
        )
        assert code == 0
        text = output.read_text()
        assert "prefix,addresses" in text
        assert "/48," in text

    def test_release_empty_corpus(self, tmp_path, capsys):
        empty = tmp_path / "empty.corpus.bin"
        save_corpus(AddressCorpus("empty"), empty)
        output = tmp_path / "release.csv"
        code = main(["release", str(empty), "--output", str(output)])
        assert code == 0
        assert "prefix,addresses" in output.read_text()


class TestFlagUnification:
    """ISSUE 5 satellite: unified flags + argparse round-trip.

    Every subcommand accepts ``--seed`` (same position, same type);
    ``--segment-dir``/``--segment-bytes`` exist wherever campaigns run
    (study and report), and parsing a canonical argv round-trips.
    """

    @pytest.mark.parametrize(
        "argv",
        [
            ["study", "--seed", "11"],
            ["report", "--seed", "11"],
            ["analyze", "--seed", "11", "c.bin"],
            ["release", "--seed", "11", "c.bin"],
            ["matrix", "--seed", "11", "spec.json", "--dir", "sweep"],
        ],
    )
    def test_every_subcommand_accepts_seed_first(self, argv):
        args = build_parser().parse_args(argv)
        assert args.seed == 11

    @pytest.mark.parametrize("command", ["study", "report"])
    def test_segment_options_on_campaign_commands(self, command):
        args = build_parser().parse_args(
            [
                command,
                "--segment-dir", "segments",
                "--segment-bytes", "8192",
            ]
        )
        assert args.segment_dir == "segments"
        assert args.segment_bytes == 8192

    def test_segment_options_default_off(self):
        args = build_parser().parse_args(["study"])
        assert args.segment_dir is None
        assert args.segment_bytes == 4 * 1024 * 1024

    def test_argparse_round_trip(self):
        """Parse → rebuild argv → reparse: an identical namespace."""
        argv = [
            "study",
            "--seed", "5",
            "--weeks", "12",
            "--scale", "tiny",
            "--output-dir", "out",
            "--workers", "3",
            "--segment-dir", "segments",
            "--segment-bytes", "8192",
            "--faults", "flap=0.1,seed=2",
            "--max-shard-retries", "4",
            "--metrics-out", "m.json",
        ]
        first = build_parser().parse_args(argv)
        rebuilt = [
            "study",
            "--seed", str(first.seed),
            "--weeks", str(first.weeks),
            "--scale", first.scale,
            "--output-dir", first.output_dir,
            "--workers", str(first.workers),
            "--segment-dir", first.segment_dir,
            "--segment-bytes", str(first.segment_bytes),
            "--faults", first.faults,
            "--max-shard-retries", str(first.max_shard_retries),
            "--metrics-out", first.metrics_out,
        ]
        second = build_parser().parse_args(rebuilt)
        assert vars(first) == vars(second)

    def test_checkpoint_with_segment_dir_exits(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "study",
                    "--checkpoint", str(tmp_path / "ck.bin"),
                    "--segment-dir", str(tmp_path / "segments"),
                ]
            )
        assert excinfo.value.code == 2
        assert "mutually exclusive" in capsys.readouterr().err


class TestSegmentedStudyCommand:
    def test_segmented_study_matches_serial_bytes(self, study_dir, tmp_path):
        output = tmp_path / "segmented"
        seg_dir = tmp_path / "segments"
        code = main(
            [
                "study",
                "--seed", "3",
                "--weeks", "10",
                "--scale", "tiny",
                "--output-dir", str(output),
                "--workers", "2",
                "--segment-dir", str(seg_dir),
                "--segment-bytes", "8192",
            ]
        )
        assert code == 0
        serial = (study_dir / "ntp-pool.corpus.bin").read_bytes()
        segmented = (output / "ntp-pool.corpus.bin").read_bytes()
        assert serial == segmented
        assert (seg_dir / "MANIFEST.json").exists()

    def test_analyze_and_release_accept_segment_dir(
        self, study_dir, tmp_path, capsys
    ):
        seg_dir = tmp_path / "segments"
        code = main(
            [
                "study",
                "--seed", "3",
                "--weeks", "10",
                "--scale", "tiny",
                "--output-dir", str(tmp_path / "out"),
                "--segment-dir", str(seg_dir),
            ]
        )
        assert code == 0
        assert main(["analyze", str(seg_dir)]) == 0
        assert "seen once" in capsys.readouterr().out
        release_out = tmp_path / "release.csv"
        code = main(
            ["release", str(seg_dir), "--output", str(release_out)]
        )
        assert code == 0
        assert "prefix,addresses" in release_out.read_text()


class TestMatrixCommand:
    MICRO = {
        "n_home_networks": 30,
        "n_cellular_subscribers": 20,
        "n_hosting_networks": 6,
    }

    def write_spec(self, tmp_path, **extra):
        doc = {
            "presets": "tiny",
            "overrides": [self.MICRO],
            "faults": [None, "flap=0.3,loss=0.05,seed=9"],
            "weeks": 1,
            "seeds": [0],
        }
        doc.update(extra)
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(doc))
        return path

    def test_matrix_parser_options(self):
        args = build_parser().parse_args(
            [
                "matrix", "spec.json",
                "--dir", "sweep",
                "--resume",
                "--matrix-workers", "3",
                "--cell-timeout", "12.5",
                "--max-cell-retries", "2",
                "--report", "report.txt",
            ]
        )
        assert args.spec == "spec.json"
        assert args.dir == "sweep"
        assert args.resume is True
        assert args.matrix_workers == 3
        assert args.cell_timeout == 12.5
        assert args.max_cell_retries == 2
        assert args.report == "report.txt"

    def test_matrix_sweep_runs_and_reports(self, tmp_path, capsys):
        spec = self.write_spec(tmp_path)
        sweep_dir = tmp_path / "sweep"
        metrics_out = tmp_path / "metrics.json"
        code = main(
            [
                "matrix", str(spec),
                "--dir", str(sweep_dir),
                "--metrics-out", str(metrics_out),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "scenario matrix report" in out
        assert "records by faults" in out
        manifest = json.loads((sweep_dir / "MATRIX.json").read_text())
        statuses = [
            cell["status"] for cell in manifest["cells"].values()
        ]
        assert statuses == ["ok", "ok"]
        metrics = json.loads(metrics_out.read_text())
        assert metrics["counters"]["repro_matrix_cells_ok_total"] == 2

    def test_matrix_refuses_rerun_without_resume(self, tmp_path, capsys):
        spec = self.write_spec(tmp_path, faults=[None], seeds=[0])
        sweep_dir = tmp_path / "sweep"
        assert main(["matrix", str(spec), "--dir", str(sweep_dir)]) == 0
        with pytest.raises(SystemExit) as excinfo:
            main(["matrix", str(spec), "--dir", str(sweep_dir)])
        assert excinfo.value.code == 2
        assert "resume" in capsys.readouterr().err

    def test_matrix_resume_skips_completed(self, tmp_path, capsys):
        spec = self.write_spec(tmp_path, faults=[None], seeds=[0])
        sweep_dir = tmp_path / "sweep"
        assert main(["matrix", str(spec), "--dir", str(sweep_dir)]) == 0
        capsys.readouterr()
        code = main(
            ["matrix", str(spec), "--dir", str(sweep_dir), "--resume"]
        )
        assert code == 0
        assert "(resumed)" in capsys.readouterr().out

    def test_matrix_bad_spec_exits(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"presets": ["tiny"], "bogus_axis": [1]}')
        with pytest.raises(SystemExit) as excinfo:
            main(["matrix", str(bad), "--dir", str(tmp_path / "sweep")])
        assert excinfo.value.code == 2
        assert "bogus_axis" in capsys.readouterr().err

    def test_matrix_report_to_file(self, tmp_path):
        spec = self.write_spec(tmp_path, faults=[None], seeds=[0])
        report = tmp_path / "matrix-report.txt"
        code = main(
            [
                "matrix", str(spec),
                "--dir", str(tmp_path / "sweep"),
                "--report", str(report),
            ]
        )
        assert code == 0
        assert "scenario matrix report" in report.read_text()
