"""Tests for the repro.api facade and the execution-options shim.

Pins the two API promises of ISSUE 5: ``from repro.api import Study``
round-trips the README quickstart, and the pre-consolidation execution
keywords (``run_study(world, config, workers=...)`` /
``StudyConfig(start=..., workers=...)``) still work but emit one
:class:`DeprecationWarning` per process.
"""

import io
import warnings

import pytest

import repro.core.study as study_module
from repro.api import Study, open_corpus, release
from repro.core import (
    AddressCorpus,
    ExecutionOptions,
    SegmentStore,
    StudyConfig,
    run_study,
    save_corpus,
)
from repro.core.storage import save_corpus_binary
from repro.world import CAMPAIGN_EPOCH, WorldConfig, build_world

WORLD_CONFIG = WorldConfig(
    seed=7,
    n_fixed_ases=10,
    n_cellular_ases=4,
    n_hosting_ases=4,
    n_home_networks=120,
    n_cellular_subscribers=80,
    n_hosting_networks=12,
)


@pytest.fixture(scope="module")
def api_world():
    return build_world(WORLD_CONFIG)


@pytest.fixture(scope="module")
def api_results(api_world):
    return Study(seed=7, weeks=10, world=api_world).run()


def corpus_bytes(corpus) -> bytes:
    buffer = io.BytesIO()
    save_corpus_binary(corpus, buffer)
    return buffer.getvalue()


class TestStudyFacade:
    def test_quickstart_round_trip(self, api_results):
        """The README quickstart: Study(seed=...).run() yields corpora."""
        assert len(api_results.ntp) > 0
        assert api_results.corpora()[0] is api_results.ntp

    def test_equals_explicit_config_pipeline(self, api_world, api_results):
        explicit = run_study(
            api_world, StudyConfig(start=CAMPAIGN_EPOCH, weeks=10, seed=7)
        )
        assert corpus_bytes(explicit.ntp) == corpus_bytes(api_results.ntp)

    def test_world_built_from_config_lazily_and_cached(self):
        study = Study(seed=7, weeks=10, world_config=WORLD_CONFIG)
        assert study.world() is study.world()

    def test_execution_options_thread_through(self, api_world, tmp_path):
        results = Study(
            seed=7,
            weeks=10,
            world=api_world,
            execution=ExecutionOptions(
                segment_dir=str(tmp_path / "segments"), segment_bytes=8192
            ),
        ).run()
        assert (tmp_path / "segments" / "MANIFEST.json").exists()
        assert len(results.ntp) > 0

    def test_rejects_world_and_world_config_together(self, api_world):
        with pytest.raises(TypeError, match="not both"):
            Study(world=api_world, world_config=WORLD_CONFIG)

    def test_rejects_wrong_execution_type(self):
        with pytest.raises(TypeError, match="ExecutionOptions"):
            Study(execution={"workers": 2})

    def test_validates_eagerly_at_construction(self):
        with pytest.raises(ValueError, match="at least"):
            Study(weeks=3)


class TestOpenCorpus:
    def test_opens_saved_file(self, tmp_path):
        corpus = AddressCorpus("saved")
        corpus.record(99, 1.0)
        path = tmp_path / "saved.corpus.bin"
        save_corpus(corpus, path)
        loaded = open_corpus(path)
        assert corpus_bytes(loaded) == corpus_bytes(corpus)

    def test_opens_segment_directory_and_manifest_path(self, tmp_path):
        corpus = AddressCorpus("seg")
        for n in range(5):
            corpus.record(1000 + n, float(n))
        store = SegmentStore(tmp_path, name="seg")
        meta = store.write_segment(
            corpus, segment_id="only", start_day=0, end_day=7
        )
        store.commit([meta], completed_weeks=1)
        via_dir = open_corpus(tmp_path)
        via_manifest = open_corpus(tmp_path / "MANIFEST.json")
        assert corpus_bytes(via_dir) == corpus_bytes(corpus)
        assert corpus_bytes(via_manifest) == corpus_bytes(corpus)


class TestRelease:
    def test_release_accepts_corpus_and_path(self, tmp_path):
        corpus = AddressCorpus("rel")
        corpus.record(0x2001 << 112 | 0xABCD, 1.0)
        artifact = release(corpus)
        assert artifact.prefix_count == 1
        path = tmp_path / "rel.corpus.bin"
        save_corpus(corpus, path)
        assert release(path).prefix_counts == artifact.prefix_counts


class TestLegacyExecutionKwargs:
    @pytest.fixture(autouse=True)
    def _reset_once_per_process_flag(self):
        previous = study_module._legacy_kwargs_warned
        study_module._legacy_kwargs_warned = False
        yield
        study_module._legacy_kwargs_warned = previous

    def test_study_config_legacy_kwargs_warn_once(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            config = StudyConfig(
                start=CAMPAIGN_EPOCH, weeks=10, workers=3, max_shard_retries=1
            )
            StudyConfig(start=CAMPAIGN_EPOCH, weeks=10, workers=2)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "workers" in str(deprecations[0].message)
        assert config.workers == 3
        assert config.execution.max_shard_retries == 1

    def test_run_study_legacy_kwargs_override_and_warn(self, api_world):
        config = StudyConfig(start=CAMPAIGN_EPOCH, weeks=10, seed=7)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            results = run_study(api_world, config, build_index=False)
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )
        assert results.origins is None
        # The caller's config object is never mutated by the override.
        assert config.build_index is True

    def test_legacy_and_execution_together_rejected(self):
        with pytest.raises(TypeError, match="not both"):
            StudyConfig(
                start=CAMPAIGN_EPOCH,
                weeks=10,
                workers=2,
                execution=ExecutionOptions(),
            )

    def test_unknown_kwargs_still_raise_type_error(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            StudyConfig(start=CAMPAIGN_EPOCH, weeks=10, wrokers=2)


class TestExecutionOptionsValidation:
    def test_checkpoint_and_segment_dir_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            ExecutionOptions(checkpoint="ck.bin", segment_dir="segments")

    def test_resume_from_segments_needs_segment_dir(self):
        with pytest.raises(ValueError, match="segment_dir"):
            ExecutionOptions(resume_from_segments=True)

    def test_rejects_bad_segment_budget(self):
        with pytest.raises(ValueError, match="byte budget"):
            ExecutionOptions(segment_bytes=0)
