"""Tests for the per-shard wall-clock timeout in the executor.

A hung worker is the one failure retry logic cannot see: it never
raises and never breaks the pool, so without a deadline the campaign
stalls forever.  These tests hang a real worker through the chaos
``hang`` mode and assert the executor kills it, records the attempt as
a ``kind="timeout"`` :class:`ShardFailure`, retries through the normal
capped-backoff path, and still merges the exact serial corpus.
"""

import pytest

from repro.core.campaign import CampaignConfig, NTPCampaign
from repro.core.parallel import run_campaign_parallel
from repro.world import CAMPAIGN_EPOCH


def make_campaign(world, weeks=1):
    return NTPCampaign(
        world, CampaignConfig(start=CAMPAIGN_EPOCH, weeks=weeks, seed=5)
    )


def records(corpus):
    return dict(corpus.items())


@pytest.fixture(scope="module")
def serial_corpus(core_world):
    return make_campaign(core_world).run()


@pytest.fixture()
def hang_chaos(tmp_path, monkeypatch):
    """Arm the chaos hooks in hang mode; returns a token-dropper."""
    tokens = tmp_path / "chaos-tokens"
    tokens.mkdir()
    monkeypatch.setenv("REPRO_CHAOS_TOKENS", str(tokens))
    monkeypatch.setenv("REPRO_CHAOS_MODE", "hang")
    # Long enough that only the executor's deadline can end the hang,
    # short enough that a leaked worker cannot outlive the test job.
    monkeypatch.setenv("REPRO_CHAOS_HANG_SECONDS", "60")
    monkeypatch.delenv("REPRO_CHAOS_SHARD", raising=False)

    def arm(count, shard=None):
        if shard is not None:
            monkeypatch.setenv("REPRO_CHAOS_SHARD", str(shard))
        for index in range(count):
            (tokens / f"token-{index}").touch()
        return tokens

    return arm


class TestTimeout:
    def test_hung_shard_is_killed_and_retried(
        self, core_world, serial_corpus, hang_chaos
    ):
        hang_chaos(1, shard=0)
        campaign = make_campaign(core_world)
        merged = run_campaign_parallel(
            campaign, workers=2, shard_timeout=1.0, retry_backoff=0.0
        )
        assert records(merged) == records(serial_corpus)
        timeouts = [
            f for f in campaign.shard_failures if f.kind == "timeout"
        ]
        assert timeouts, campaign.shard_failures
        assert any(f.shard_index == 0 for f in timeouts)
        assert all(f.action == "retried" for f in timeouts)
        assert all("deadline" in f.error for f in timeouts)
        assert (
            campaign.metrics.counter_value("repro_shard_timeouts_total")
            == len(timeouts)
        )
        # The hung worker's pool was killed and rebuilt.
        assert (
            campaign.metrics.counter_value("repro_pool_rebuilds_total") >= 1
        )

    def test_repeated_hangs_degrade_to_inline(
        self, core_world, serial_corpus, hang_chaos
    ):
        # Every pool attempt of shard 0 hangs; after max_shard_retries
        # the shard must be recomputed inline (chaos hooks bypassed)
        # rather than stalling or aborting the campaign.
        hang_chaos(10, shard=0)
        campaign = make_campaign(core_world)
        merged = run_campaign_parallel(
            campaign,
            workers=2,
            shard_timeout=1.0,
            max_shard_retries=1,
            retry_backoff=0.0,
        )
        assert records(merged) == records(serial_corpus)
        shard0 = [
            f for f in campaign.shard_failures if f.shard_index == 0
        ]
        assert [f.action for f in shard0] == ["retried", "inline"]
        assert all(f.kind == "timeout" for f in shard0)

    def test_no_timeout_without_deadline_on_clean_run(
        self, core_world, serial_corpus, monkeypatch
    ):
        monkeypatch.delenv("REPRO_CHAOS_TOKENS", raising=False)
        campaign = make_campaign(core_world)
        merged = run_campaign_parallel(
            campaign, workers=2, shard_timeout=30.0
        )
        assert records(merged) == records(serial_corpus)
        assert campaign.shard_failures == []
        assert (
            campaign.metrics.counter_value("repro_shard_timeouts_total")
            == 0
        )

    def test_failure_kinds_are_recorded(self, core_world, tmp_path,
                                        monkeypatch):
        # raise-mode chaos failures carry kind="exception" so the
        # timeout taxonomy never mislabels an ordinary crash.
        tokens = tmp_path / "raise-tokens"
        tokens.mkdir()
        (tokens / "token-0").touch()
        monkeypatch.setenv("REPRO_CHAOS_TOKENS", str(tokens))
        monkeypatch.setenv("REPRO_CHAOS_MODE", "raise")
        monkeypatch.delenv("REPRO_CHAOS_SHARD", raising=False)
        campaign = make_campaign(core_world)
        run_campaign_parallel(campaign, workers=2, retry_backoff=0.0)
        assert campaign.shard_failures
        assert all(
            f.kind == "exception" for f in campaign.shard_failures
        )


class TestValidation:
    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_bad_shard_timeout(self, core_world, bad):
        with pytest.raises(ValueError, match="shard_timeout"):
            run_campaign_parallel(
                make_campaign(core_world), workers=2, shard_timeout=bad
            )

    def test_execution_options_validate_shard_timeout(self):
        from repro.core.study import ExecutionOptions

        with pytest.raises(ValueError, match="shard_timeout"):
            ExecutionOptions(shard_timeout=-2.0)
        assert ExecutionOptions(shard_timeout=5.0).shard_timeout == 5.0
