"""Tests for repro.core.decay — hitlist rust measurement."""

import pytest

from repro.core.decay import corpus_decay, responsiveness_decay
from repro.world import CAMPAIGN_EPOCH, WEEK


class TestResponsivenessDecay:
    def test_validation(self, core_world, study):
        snapshots = study.hitlist_service.snapshots
        with pytest.raises(ValueError):
            responsiveness_decay(core_world, snapshots, max_age_weeks=-1)
        with pytest.raises(ValueError):
            responsiveness_decay(
                core_world, snapshots, sample_per_snapshot=0
            )

    def test_fresh_snapshots_mostly_responsive(self, core_world, study):
        curve = responsiveness_decay(
            core_world, study.hitlist_service.snapshots[:3],
            max_age_weeks=2, sample_per_snapshot=100,
        )
        assert curve[0] > 0.9

    def test_decay_is_monotone_nonincreasing_roughly(self, core_world, study):
        curve = responsiveness_decay(
            core_world, study.hitlist_service.snapshots[:4],
            max_age_weeks=4, sample_per_snapshot=100,
        )
        assert curve[4] <= curve[0] + 1e-9

    def test_empty_snapshots_give_empty_curve(self, core_world):
        assert responsiveness_decay(core_world, []) == {}


class TestCorpusDecay:
    def test_validation(self, core_world, study):
        with pytest.raises(ValueError):
            corpus_decay(core_world, [], CAMPAIGN_EPOCH, [0])
        with pytest.raises(ValueError):
            corpus_decay(core_world, [1], CAMPAIGN_EPOCH, [0], sample=0)

    def test_passive_addresses_rust_fast(self, core_world, study):
        window = (CAMPAIGN_EPOCH + 3 * WEEK, CAMPAIGN_EPOCH + 4 * WEEK)
        addresses = list(study.ntp.addresses_in_window(*window))
        curve = corpus_decay(
            core_world, addresses, observed_at=window[1],
            ages_weeks=[0, 4], sample=150,
        )
        # Much of a passive corpus is unreachable even immediately
        # (firewalls, churn); it does not improve with age.
        assert curve[0] < 0.9
        assert curve[4] <= curve[0] + 0.1
