"""Tests for fault injection threaded through the collection stack.

Two invariants anchor everything:

* a **zero-fault plan is invisible** — campaigns configured with
  ``FaultPlan.none()`` produce corpora byte-identical to campaigns with
  no plan at all, and
* a **non-zero plan is deterministic** — the same seed and plan replay
  the same faults for any worker/shard count, so sharded faulty runs
  still merge to the serial faulty corpus exactly.
"""

import io

import pytest

from repro.core.campaign import CampaignConfig, NTPCampaign
from repro.core.parallel import run_campaign_parallel
from repro.core.storage import save_corpus_binary
from repro.faults import FaultPlan
from repro.world import CAMPAIGN_EPOCH

FAULTS = FaultPlan(
    seed=9,
    vantage_flap_rate=0.3,
    outage_duration=6 * 3600.0,
    packet_loss=0.05,
    country_loss=(("BR", 0.3),),
    corruption_rate=0.02,
)


def make_campaign(world, faults=None, weeks=2, **overrides):
    config = CampaignConfig(
        start=CAMPAIGN_EPOCH, weeks=weeks, seed=5, faults=faults, **overrides
    )
    return NTPCampaign(world, config)


def corpus_bytes(corpus):
    stream = io.BytesIO()
    save_corpus_binary(corpus, stream)
    return stream.getvalue()


@pytest.fixture(scope="module")
def clean_corpus(core_world):
    return make_campaign(core_world).run()


@pytest.fixture(scope="module")
def faulty_corpus(core_world):
    return make_campaign(core_world, faults=FAULTS).run()


class TestZeroPlanInvisibility:
    def test_none_plan_is_byte_identical_to_no_plan(
        self, core_world, clean_corpus
    ):
        campaign = make_campaign(core_world, faults=FaultPlan.none())
        assert campaign._injector is None  # fast path engaged
        assert corpus_bytes(campaign.run()) == corpus_bytes(clean_corpus)

    def test_zero_rate_plan_is_byte_identical_too(
        self, core_world, clean_corpus
    ):
        plan = FaultPlan(seed=99, country_loss=(("BR", 0.0),))
        campaign = make_campaign(core_world, faults=plan)
        assert corpus_bytes(campaign.run()) == corpus_bytes(clean_corpus)

    def test_config_rejects_non_plan(self, core_world):
        with pytest.raises(TypeError):
            make_campaign(core_world, faults="flap=0.2")


class TestFaultyDeterminism:
    def test_faulty_differs_from_clean(self, clean_corpus, faulty_corpus):
        assert corpus_bytes(faulty_corpus) != corpus_bytes(clean_corpus)
        # Faults only ever remove observations, never invent addresses.
        assert set(faulty_corpus.addresses()) <= set(clean_corpus.addresses())

    def test_serial_rerun_is_byte_identical(self, core_world, faulty_corpus):
        rerun = make_campaign(core_world, faults=FAULTS).run()
        assert corpus_bytes(rerun) == corpus_bytes(faulty_corpus)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_sharded_faulty_run_matches_serial(
        self, core_world, faulty_corpus, workers
    ):
        campaign = make_campaign(core_world, faults=FAULTS)
        merged = run_campaign_parallel(campaign, workers=workers)
        assert corpus_bytes(merged) == corpus_bytes(faulty_corpus)

    def test_shard_count_independent(self, core_world, faulty_corpus):
        campaign = make_campaign(core_world, faults=FAULTS)
        merged = run_campaign_parallel(campaign, workers=2, shard_count=5)
        assert corpus_bytes(merged) == corpus_bytes(faulty_corpus)

    def test_different_fault_seed_differs(self, core_world, faulty_corpus):
        other = FaultPlan(
            seed=10,
            vantage_flap_rate=0.3,
            outage_duration=6 * 3600.0,
            packet_loss=0.05,
            country_loss=(("BR", 0.3),),
            corruption_rate=0.02,
        )
        rerun = make_campaign(core_world, faults=other).run()
        assert corpus_bytes(rerun) != corpus_bytes(faulty_corpus)


class TestDegradation:
    def test_corruption_increments_malformed_not_raises(self, core_world):
        campaign = make_campaign(
            core_world, faults=FaultPlan(seed=9, corruption_rate=0.5)
        )
        campaign.run(0, 1)
        stats = [server.stats for server in campaign.servers.values()]
        assert sum(s.malformed + s.dropped_mode for s in stats) > 0
        # Every datagram was accounted for: served, malformed or dropped.
        for s in stats:
            assert s.requests == s.responses + s.malformed + s.dropped_mode

    def test_ablation_mode_drops_corrupted(self, core_world):
        plan = FaultPlan(seed=9, corruption_rate=0.5)
        full = make_campaign(core_world, faults=plan).run()
        ablated = make_campaign(
            core_world, faults=plan, full_packet_path=False
        ).run()
        # The ablation approximates corrupted -> dropped, so it records
        # no more than the full path (bit flips may still parse there).
        assert len(ablated) <= len(full)

    def test_total_loss_records_nothing(self, core_world):
        campaign = make_campaign(
            core_world, faults=FaultPlan(seed=9, packet_loss=1.0)
        )
        assert len(campaign.run(0, 1)) == 0

    def test_pool_rotation_filter_installed(self, core_world):
        campaign = make_campaign(core_world, faults=FAULTS)
        assert campaign.pool._rotation_filter is not None
        clean = make_campaign(core_world)
        assert clean.pool._rotation_filter is None


class TestReplay:
    def test_captured_events_replay_faulty_run(self, core_world):
        campaign = make_campaign(core_world, faults=FAULTS)
        delivered = []
        original_deliver = campaign._deliver

        def spying_deliver(client_address, when, vantage_address, datagram=None):
            original_deliver(client_address, when, vantage_address, datagram)
            server = campaign.servers[vantage_address]
            delivered.append(
                (when, client_address, vantage_address, server.stats.responses)
            )

        campaign._deliver = spying_deliver
        campaign.run(0, 1)
        # Keep only deliveries the vantage actually recorded (corrupted
        # datagrams that failed to parse were counted, not recorded).
        recorded = []
        last_responses = {}
        for when, client, vantage, responses in delivered:
            if responses > last_responses.get(vantage, 0):
                recorded.append((when, client, vantage))
            last_responses[vantage] = responses
        replayed = [
            event
            for day in range(7)
            for event in campaign.captured_events_on_day(day)
        ]
        assert sorted(recorded) == sorted(replayed)


class TestAvailabilityReporting:
    def test_no_plan_reports_full_availability(self, core_world):
        campaign = make_campaign(core_world)
        availability = campaign.vantage_availability()
        assert len(availability) == len(core_world.vantages)
        assert all(t.fraction == 1.0 for _, t in availability)
        assert all(t.ejections == 0 for _, t in availability)

    def test_flapping_shows_in_availability(self, core_world):
        campaign = make_campaign(
            core_world,
            faults=FaultPlan(
                seed=9, vantage_flap_rate=0.6, outage_duration=12 * 3600.0
            ),
            weeks=4,
        )
        availability = campaign.vantage_availability()
        assert any(t.ejections > 0 for _, t in availability)
        assert any(t.fraction < 1.0 for _, t in availability)

    def test_study_report_includes_availability(self, core_world):
        from repro.analysis.report import study_report
        from repro.core import StudyConfig, run_study

        results = run_study(
            core_world,
            StudyConfig(
                start=CAMPAIGN_EPOCH,
                weeks=10,
                seed=31,
                faults=FaultPlan(
                    seed=9, vantage_flap_rate=0.5, outage_duration=12 * 3600.0
                ),
            ),
        )
        text = study_report(core_world, results)
        assert "vantage availability" in text
        assert "in DNS rotation" in text
