"""Equivalence property tests for the columnar corpus index.

Every aggregate a :class:`CorpusIndex` (or an index-carrying corpus)
serves must be *exactly* equal to the naive per-figure recomputation over
the raw record store — including origin resolution through
:class:`CachedOrigins` against a routing table that announces prefixes
more specific than /64 (the memoization's correctness edge case).

The strategy builds corpora the way the study produces them: a few
routed /32s carrying /48 and /64 sub-announcements (plus occasional /80
and /112 ones), addresses clustered into few /64s, IIDs drawn from the
paper's pattern families (zeroes, low-byte, EUI-64 with MAC reuse across
/64s, random) — so every column and aggregate is exercised.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.addr.eui64 import mac_to_iid
from repro.addr.ipv6 import with_iid
from repro.core.categories import (
    category_composition,
    top_as_entropy_distributions,
)
from repro.core.compare import compare_datasets
from repro.core.corpus import AddressCorpus
from repro.core.index import NO_MAC, CachedOrigins, CorpusIndex
from repro.core.lifetime import eui64_iid_lifetimes, iid_lifetimes_by_entropy
from repro.core.tracking import analyze_tracking
from repro.net.prefixes import Prefix
from repro.net.routing import RoutingTable

# A handful of /32 blocks the generator announces and draws /64s from.
BLOCKS = [(0x2001 << 112) | (block << 96) for block in range(1, 7)]

# MAC pool small enough that MACs recur across /64s (the tracking case).
MACS = [0x0011_22_00_00_00 + n for n in range(12)]

IIDS = st.one_of(
    st.just(0),                                        # zeroes
    st.integers(min_value=1, max_value=0xFF),          # low byte
    st.integers(min_value=0x100, max_value=0xFFFF),    # low 2 bytes
    st.sampled_from(MACS).map(mac_to_iid),             # EUI-64
    st.integers(min_value=0, max_value=(1 << 32) - 1), # hex32-decodable
    st.integers(min_value=0, max_value=(1 << 64) - 1), # arbitrary
)

sightings = st.lists(
    st.tuples(
        st.sampled_from(BLOCKS),
        st.integers(min_value=0, max_value=5),   # /48 selector
        st.integers(min_value=0, max_value=3),   # /64 selector
        IIDS,
        st.floats(min_value=0.0, max_value=3e7, allow_nan=False),
    ),
    min_size=1,
    max_size=120,
)


def build_corpus(name, events):
    corpus = AddressCorpus(name)
    for block, s48, s64, iid, when in events:
        prefix64 = block | (s48 << 80) | (s64 << 64)
        corpus.record(with_iid(prefix64, iid), when)
    return corpus


def build_table():
    """Announcements at /32, /48, /64 — and more specific than /64."""
    table = RoutingTable()
    for position, block in enumerate(BLOCKS[:-1]):  # last block unrouted
        table.announce(Prefix(block, 32), 64500 + position)
        table.announce(Prefix(block | (1 << 80), 48), 64600 + position)
        table.announce(Prefix(block | (2 << 80) | (1 << 64), 64), 64700 + position)
    # Longer-than-/64 announcements: carve address ranges *inside* /64s
    # that generated addresses actually fall into, so two addresses of
    # one /64 can resolve to different origins.
    hot64 = BLOCKS[0]  # the (s48=0, s64=0) /64 of the first block
    # The /80 covers every IID below 2**48 (all low-byte and low-2-byte
    # IIDs of that /64); the /112 covers part of the EUI-64 IID space.
    table.announce(Prefix(hot64, 80), 65001)
    table.announce(Prefix(hot64 | (0xFFFE << 32), 112), 65002)
    return table


def ipv4_origin(value):
    """Deterministic IPv4 origin stub for the embedding acceptance rule."""
    return 64500 + (value % 4)


def naive_aggregates(corpus, origin):
    return {
        "len": len(corpus),
        "slash48s": corpus.slash48_set(),
        "slash64s": corpus.slash64_set(),
        "asn_counts": corpus.asn_counts(origin),
        "asn_set": corpus.asn_set(origin),
        "lifetimes": corpus.lifetimes(),
        "iid_intervals": corpus.iid_intervals(),
        "eui64_macs": corpus.eui64_mac_addresses(),
        "eui64_addresses": list(corpus.eui64_addresses()),
        "eui64_lifetimes": eui64_iid_lifetimes(corpus),
        "iid_lifetimes": iid_lifetimes_by_entropy(corpus),
        "categories": category_composition(
            corpus, origin, ipv4_origin,
            min_as_instances=1, min_as_fraction=0.0,
        ),
        "top_as_entropy": top_as_entropy_distributions(corpus, origin, top=3),
    }


class TestIndexEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(sightings)
    def test_index_aggregates_equal_naive(self, events):
        table = build_table()
        naive_corpus = build_corpus("naive", events)
        naive = naive_aggregates(naive_corpus, table.origin_asn)

        indexed_corpus = build_corpus("naive", events)
        origins = CachedOrigins.from_routing_table(table)
        indexed_corpus.build_index(origins)
        assert indexed_corpus.index is not None
        indexed = naive_aggregates(indexed_corpus, origins)

        assert naive == indexed

    @settings(max_examples=40, deadline=None)
    @given(sightings)
    def test_cached_origins_matches_raw_lpm_per_address(self, events):
        table = build_table()
        corpus = build_corpus("c", events)
        origins = CachedOrigins.from_routing_table(table)
        for address in corpus.addresses():
            assert origins(address) == table.origin_asn(address)
        # Second pass answers from the /64 cache, identically.
        for address in corpus.addresses():
            assert origins(address) == table.origin_asn(address)

    @settings(max_examples=40, deadline=None)
    @given(sightings, sightings)
    def test_tracking_and_comparison_equal_naive(self, ntp_events, other_events):
        table = build_table()
        country_pool = ("DE", "US", "JP", None)

        def run(indexed):
            ntp = build_corpus("ntp-pool", ntp_events)
            other = build_corpus("ipv6-hitlist", other_events)
            if indexed:
                origin = CachedOrigins.from_routing_table(table)
                ntp.build_index(origin)
                other.build_index(origin)
            else:
                origin = table.origin_asn

            def country_of(address):
                asn = origin(address)
                return None if asn is None else country_pool[asn % 4]

            tracking = analyze_tracking(ntp, origin, country_of)
            comparison = compare_datasets(ntp, [other], origin)
            return tracking, comparison.render()

        naive_tracking, naive_table = run(indexed=False)
        fast_tracking, fast_table = run(indexed=True)
        assert naive_table == fast_table
        assert naive_tracking.tracks == fast_tracking.tracks
        assert naive_tracking.classes == fast_tracking.classes
        assert naive_tracking.eui64_addresses == fast_tracking.eui64_addresses
        assert naive_tracking.multi_slash64_macs == fast_tracking.multi_slash64_macs


class TestLongerThanSlash64Announcements:
    """The CachedOrigins correctness condition, pinned deterministically."""

    def test_hot_slash64_resolves_per_address(self):
        table = RoutingTable()
        block = BLOCKS[0]
        table.announce(Prefix(block, 32), 64500)
        # An /80 announcement inside one /64: addresses of that /64 no
        # longer share an origin.
        table.announce(Prefix(block, 80), 65001)
        origins = CachedOrigins.from_routing_table(table)
        assert origins.hot_slash64s == {block}

        inside_80 = with_iid(block, 0x1234)            # covered by the /80
        outside_80 = with_iid(block, 1 << 60)          # only by the /32
        assert origins(inside_80) == 65001
        assert origins(outside_80) == 64500
        with pytest.raises(ValueError):
            origins.slash64_origin(block)

        corpus = AddressCorpus("hot")
        corpus.record(inside_80, 1.0)
        corpus.record(outside_80, 2.0)
        sibling64 = with_iid(block | (7 << 64), 5)     # cold /64, same /48
        corpus.record(sibling64, 3.0)

        naive = AddressCorpus("hot")
        for address, (first, last, count) in corpus.items():
            naive.record_interval(address, first, last, count)

        corpus.build_index(origins)
        assert corpus.asn_counts(origins) == naive.asn_counts(table.origin_asn)
        assert corpus.asn_counts(origins) == {65001: 1, 64500: 2}

    def test_slash112_hot_set_detection(self):
        table = build_table()
        origins = CachedOrigins.from_routing_table(table)
        # Both the /80 and the /112 land inside /64s of BLOCKS[0]; the
        # hot set keys them by their containing /64.
        assert BLOCKS[0] in origins.hot_slash64s
        assert all(key & ((1 << 64) - 1) == 0 for key in origins.hot_slash64s)


class TestIndexLifecycle:
    def test_mutation_maintains_index(self):
        # Appends no longer invalidate: the attached index is kept
        # current in place and stays equal to a from-scratch rebuild.
        corpus = build_corpus("c", [(BLOCKS[0], 0, 0, 5, 1.0)])
        index = corpus.build_index()
        corpus.record(with_iid(BLOCKS[1], 9), 2.0)
        assert corpus.index is index
        corpus.record_interval(with_iid(BLOCKS[2], 9), 1.0, 2.0)
        assert corpus.index is index
        corpus.merge(build_corpus("d", [(BLOCKS[3], 1, 1, 7, 4.0)]))
        assert corpus.index is index
        rebuilt = CorpusIndex.build(corpus)
        assert index.addresses == rebuilt.addresses
        assert index.first.tobytes() == rebuilt.first.tobytes()
        assert index.last.tobytes() == rebuilt.last.tobytes()
        assert index.counts.tobytes() == rebuilt.counts.tobytes()
        assert index.entropies.tobytes() == rebuilt.entropies.tobytes()
        assert index.macs.tobytes() == rebuilt.macs.tobytes()

    def test_attach_index_rejects_size_mismatch(self):
        corpus = build_corpus(
            "c", [(BLOCKS[0], 0, 0, 5, 1.0), (BLOCKS[1], 0, 0, 5, 1.0)]
        )
        index = CorpusIndex.build(corpus)
        corpus.record(with_iid(BLOCKS[2], 3), 1.0)
        with pytest.raises(ValueError):
            corpus.attach_index(index)

    def test_mac_column_sentinel(self):
        corpus = build_corpus(
            "c",
            [
                (BLOCKS[0], 0, 0, mac_to_iid(MACS[0]), 1.0),
                (BLOCKS[0], 0, 1, 42, 2.0),
            ],
        )
        index = CorpusIndex.build(corpus)
        macs = sorted(index.macs)
        assert macs == sorted([MACS[0], NO_MAC])


class TestMergeFastPath:
    @settings(max_examples=60, deadline=None)
    @given(sightings, sightings)
    def test_bulk_merge_equals_per_record_merge(self, left, right):
        fast = build_corpus("a", left)
        fast.merge(build_corpus("b", right))

        slow = build_corpus("a", left)
        for address, (first, last, count) in build_corpus("b", right).items():
            slow.record_interval(address, first, last, count)

        assert dict(fast.items()) == dict(slow.items())

    def test_merge_into_empty_does_not_alias_records(self):
        source = build_corpus("src", [(BLOCKS[0], 0, 0, 5, 1.0)])
        target = AddressCorpus("dst")
        target.merge(source)
        address = next(target.addresses())
        target.record(address, 99.0)
        assert source.last_seen(address) == 1.0
        assert target.last_seen(address) == 99.0


class TestCachedOriginsLRU:
    """The LRU cap on the per-/64 memo: forgetting, never wrong answers.

    A serving process lives long enough to meet unboundedly many /64s,
    so the memo must be boundable — and because eviction only forgets
    (a re-met /64 is re-resolved through the same trie), a capped cache
    must answer exactly like an uncapped one on any query stream.
    """

    @settings(max_examples=40, deadline=None)
    @given(sightings, st.integers(min_value=1, max_value=8))
    def test_capped_equals_uncapped_on_any_stream(self, events, cap):
        table = build_table()
        uncapped = CachedOrigins.from_routing_table(table)
        capped = CachedOrigins.from_routing_table(
            table, max_slash64s=cap
        )
        corpus = build_corpus("c", events)
        # Two passes: the second hits (and reorders) the capped LRU.
        for _ in range(2):
            for address in corpus.addresses():
                assert capped(address) == uncapped(address)
                assert capped(address) == table.origin_asn(address)

    @settings(max_examples=40, deadline=None)
    @given(sightings, st.integers(min_value=1, max_value=8))
    def test_cache_size_never_exceeds_cap(self, events, cap):
        table = build_table()
        capped = CachedOrigins.from_routing_table(
            table, max_slash64s=cap
        )
        for address in build_corpus("c", events).addresses():
            capped(address)
            assert len(capped._cache) <= cap

    def test_evictions_counted_and_reported(self):
        table = build_table()
        capped = CachedOrigins.from_routing_table(table, max_slash64s=2)
        # BLOCKS[1] carries no longer-than-/64 announcement, so every
        # /64 below goes through the memo (hot /64s bypass it).
        slash64s = [BLOCKS[1] | (n << 64) for n in range(4)]
        for prefix in slash64s:
            capped(with_iid(prefix, 1))
        info = capped.cache_info()
        assert info["max_slash64s"] == 2
        assert info["evictions"] == 2
        assert info["cached_slash64s"] == 2
        # The uncapped memo reports neither key.
        uncapped = CachedOrigins.from_routing_table(table)
        uncapped(with_iid(slash64s[0], 1))
        assert "max_slash64s" not in uncapped.cache_info()
        assert "evictions" not in uncapped.cache_info()

    def test_lru_order_recency_not_insertion(self):
        table = build_table()
        capped = CachedOrigins.from_routing_table(table, max_slash64s=2)
        first = with_iid(BLOCKS[1], 1)
        second = with_iid(BLOCKS[1] | (1 << 64), 1)
        third = with_iid(BLOCKS[1] | (2 << 64), 1)
        capped(first)
        capped(second)
        capped(first)   # refresh: first is now the most recent
        capped(third)   # evicts second, not first
        lpm_before = capped.lpm_calls
        capped(first)
        assert capped.lpm_calls == lpm_before  # still cached
        capped(second)
        assert capped.lpm_calls == lpm_before + 1  # was evicted

    def test_eviction_never_forgets_hot_slash64_correctness(self):
        """Longer-than-/64 announcements stay per-address under a cap."""
        table = build_table()
        capped = CachedOrigins.from_routing_table(table, max_slash64s=1)
        inside = with_iid(BLOCKS[0], 7)       # under the /80: 65001
        outside = BLOCKS[0] | (1 << 63)       # past the /80: the /32
        churn = [with_iid(BLOCKS[1] | (n << 64), 1) for n in range(2)]
        for _ in range(3):
            assert capped(inside) == 65001
            assert capped(outside) == table.origin_asn(outside)
            for address in churn:  # two /64s through a 1-slot cache
                capped(address)
        assert capped.cache_info()["evictions"] >= 1

    def test_bad_cap_rejected(self):
        table = build_table()
        with pytest.raises(ValueError, match="max_slash64s"):
            CachedOrigins.from_routing_table(table, max_slash64s=0)
