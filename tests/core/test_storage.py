"""Tests for repro.core.storage — corpus persistence."""

import io
import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.corpus import AddressCorpus
from repro.core.storage import (
    load_checkpoint,
    load_corpus,
    load_corpus_binary,
    load_corpus_text,
    save_checkpoint,
    save_corpus,
    save_corpus_binary,
    save_corpus_text,
)


def sample_corpus():
    corpus = AddressCorpus("sample")
    corpus.record_interval(0x20010DB8 << 96 | 1, 10.0, 20.5, 3)
    corpus.record_interval(0x20010DB8 << 96 | 2, 0.25, 0.25, 1)
    corpus.record_interval((1 << 128) - 1, 1e9, 2e9, 100)
    return corpus


def assert_corpora_equal(a, b):
    assert a.name == b.name
    assert len(a) == len(b)
    assert dict(a.items()) == dict(b.items())


class TestTextFormat:
    def test_roundtrip(self):
        corpus = sample_corpus()
        stream = io.StringIO()
        written = save_corpus_text(corpus, stream)
        assert written == 3
        stream.seek(0)
        assert_corpora_equal(corpus, load_corpus_text(stream))

    def test_rejects_garbage_header(self):
        with pytest.raises(ValueError):
            load_corpus_text(io.StringIO("not a corpus\n"))

    def test_rejects_missing_columns(self):
        with pytest.raises(ValueError):
            load_corpus_text(io.StringIO("# repro-corpus v1 name=x\nbad\n"))

    def test_rejects_malformed_record(self):
        text = (
            "# repro-corpus v1 name=x\n"
            "address,first_seen,last_seen,count\n"
            "2001:db8::1,1.0\n"
        )
        with pytest.raises(ValueError):
            load_corpus_text(io.StringIO(text))

    def test_skips_comments_and_blanks(self):
        text = (
            "# repro-corpus v1 name=x\n"
            "address,first_seen,last_seen,count\n"
            "\n"
            "# comment\n"
            "2001:db8::1,1.0,2.0,2\n"
        )
        corpus = load_corpus_text(io.StringIO(text))
        assert len(corpus) == 1

    def test_empty_corpus(self):
        stream = io.StringIO()
        save_corpus_text(AddressCorpus("empty"), stream)
        stream.seek(0)
        loaded = load_corpus_text(stream)
        assert loaded.name == "empty"
        assert len(loaded) == 0


class TestBinaryFormat:
    def test_roundtrip(self):
        corpus = sample_corpus()
        stream = io.BytesIO()
        assert save_corpus_binary(corpus, stream) == 3
        stream.seek(0)
        assert_corpora_equal(corpus, load_corpus_binary(stream))

    def test_rejects_bad_magic(self):
        with pytest.raises(ValueError):
            load_corpus_binary(io.BytesIO(b"XXXX" + b"\x00" * 32))

    def test_rejects_truncation(self):
        corpus = sample_corpus()
        stream = io.BytesIO()
        save_corpus_binary(corpus, stream)
        data = stream.getvalue()[:-8]
        with pytest.raises(ValueError):
            load_corpus_binary(io.BytesIO(data))

    def test_timestamps_preserved_exactly(self):
        corpus = AddressCorpus("precise")
        corpus.record_interval(7, 0.1 + 0.2, 1e308, 1)
        stream = io.BytesIO()
        save_corpus_binary(corpus, stream)
        stream.seek(0)
        loaded = load_corpus_binary(stream)
        assert loaded.first_seen(7) == 0.1 + 0.2
        assert loaded.last_seen(7) == 1e308

    def test_smaller_than_text(self):
        corpus = sample_corpus()
        text = io.StringIO()
        save_corpus_text(corpus, text)
        binary = io.BytesIO()
        save_corpus_binary(corpus, binary)
        assert len(binary.getvalue()) < len(text.getvalue())

    def test_canonical_order_independent_of_insertion(self):
        forward = sample_corpus()
        backward = AddressCorpus("sample")
        for address, (first, last, count) in reversed(
            list(forward.items())
        ):
            backward.record_interval(address, first, last, count)
        a, b = io.BytesIO(), io.BytesIO()
        save_corpus_binary(forward, a)
        save_corpus_binary(backward, b)
        assert a.getvalue() == b.getvalue()


def v1_corpus_bytes(name, records):
    """Hand-roll a pre-PR v1 file (uint32 counts, RPC1 magic)."""
    record = struct.Struct(">16s d d I")
    out = io.BytesIO()
    out.write(b"RPC1")
    encoded = name.encode("utf-8")
    out.write(len(encoded).to_bytes(2, "big"))
    out.write(encoded)
    out.write(len(records).to_bytes(8, "big"))
    for address, first, last, count in records:
        out.write(record.pack(address.to_bytes(16, "big"), first, last, count))
    return out.getvalue()


class TestBinaryVersions:
    def test_v1_file_still_loads(self):
        data = v1_corpus_bytes(
            "legacy",
            [(0x20010DB8 << 96 | 1, 10.0, 20.5, 3), (7, 0.25, 0.25, 1)],
        )
        corpus = load_corpus_binary(io.BytesIO(data))
        assert corpus.name == "legacy"
        assert dict(corpus.items()) == {
            0x20010DB8 << 96 | 1: (10.0, 20.5, 3),
            7: (0.25, 0.25, 1),
        }

    def test_v1_writer_roundtrip(self):
        corpus = sample_corpus()
        stream = io.BytesIO()
        assert save_corpus_binary(corpus, stream, version=1) == 3
        assert stream.getvalue().startswith(b"RPC1")
        stream.seek(0)
        assert_corpora_equal(corpus, load_corpus_binary(stream))

    def test_v2_is_default_magic(self):
        stream = io.BytesIO()
        save_corpus_binary(sample_corpus(), stream)
        assert stream.getvalue().startswith(b"RPC2")

    def test_v2_holds_counts_beyond_uint32(self):
        corpus = AddressCorpus("busy")
        corpus.record_interval(9, 1.0, 2.0, (1 << 32) + 5)
        stream = io.BytesIO()
        save_corpus_binary(corpus, stream)
        stream.seek(0)
        loaded = load_corpus_binary(stream)
        assert loaded.observation_count(9) == (1 << 32) + 5

    def test_v1_overflow_raises_clear_error(self):
        corpus = AddressCorpus("busy")
        corpus.record_interval(9, 1.0, 2.0, (1 << 32) + 5)
        with pytest.raises(ValueError, match="uint32.*v1"):
            save_corpus_binary(corpus, io.BytesIO(), version=1)

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError):
            save_corpus_binary(sample_corpus(), io.BytesIO(), version=3)


class ExplodingCorpus(AddressCorpus):
    """Raises partway through serialization, like a mid-write crash."""

    def items(self):
        iterator = super().items()
        yield next(iterator)
        raise OSError("simulated crash")


class TestAtomicSave:
    @pytest.mark.parametrize("suffix", [".bin", ".csv"])
    def test_failed_save_keeps_previous_file(self, tmp_path, suffix):
        path = tmp_path / f"c.corpus{suffix}"
        good = sample_corpus()
        save_corpus(good, path)
        bad = ExplodingCorpus("sample")
        bad.merge(good)
        with pytest.raises(OSError):
            save_corpus(bad, path)
        assert_corpora_equal(good, load_corpus(path))
        # No temp litter either.
        assert list(tmp_path.iterdir()) == [path]


class TestCheckpoints:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "campaign.ckpt"
        corpus = sample_corpus()
        save_checkpoint(corpus, path, 17)
        loaded, completed = load_checkpoint(path)
        assert completed == 17
        assert_corpora_equal(corpus, loaded)

    def test_rejects_bad_magic(self, tmp_path):
        path = tmp_path / "campaign.ckpt"
        path.write_bytes(b"XXXX" + b"\x00" * 16)
        with pytest.raises(ValueError):
            load_checkpoint(path)

    def test_rejects_bad_week(self, tmp_path):
        with pytest.raises(ValueError):
            save_checkpoint(sample_corpus(), tmp_path / "c.ckpt", -1)


class TestValidationOnLoad:
    def test_text_loader_rejects_nan_timestamps(self):
        text = (
            "# repro-corpus v1 name=x\n"
            "address,first_seen,last_seen,count\n"
            "2001:db8::1,nan,2.0,2\n"
        )
        with pytest.raises(ValueError, match="line 3"):
            load_corpus_text(io.StringIO(text))

    def test_text_loader_rejects_inf_timestamps(self):
        text = (
            "# repro-corpus v1 name=x\n"
            "address,first_seen,last_seen,count\n"
            "2001:db8::1,1.0,inf,2\n"
        )
        with pytest.raises(ValueError, match="line 3"):
            load_corpus_text(io.StringIO(text))

    def test_text_saver_rejects_corrupting_name(self):
        corpus = sample_corpus()
        corpus.name = "evil\ninjected"  # bypass constructor validation
        with pytest.raises(ValueError):
            save_corpus_text(corpus, io.StringIO())


class TestPathInterface:
    def test_suffix_dispatch(self, tmp_path):
        corpus = sample_corpus()
        text_path = tmp_path / "c.corpus.csv"
        binary_path = tmp_path / "c.corpus.bin"
        save_corpus(corpus, text_path)
        save_corpus(corpus, binary_path)
        assert_corpora_equal(corpus, load_corpus(text_path))
        assert_corpora_equal(corpus, load_corpus(binary_path))
        # Binary file is not valid text input and vice versa.
        with pytest.raises(ValueError):
            load_corpus_binary(text_path.open("rb"))


class TestPropertyRoundtrip:
    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=(1 << 128) - 1),
            st.tuples(
                st.floats(min_value=0, max_value=1e12),
                st.floats(min_value=0, max_value=1e12),
                st.integers(min_value=1, max_value=1_000_000),
            ),
            max_size=30,
        )
    )
    def test_both_formats_roundtrip(self, records):
        corpus = AddressCorpus("prop")
        for address, (first, extra, count) in records.items():
            corpus.record_interval(address, first, first + extra, count)
        text = io.StringIO()
        save_corpus_text(corpus, text)
        text.seek(0)
        assert_corpora_equal(corpus, load_corpus_text(text))
        binary = io.BytesIO()
        save_corpus_binary(corpus, binary)
        binary.seek(0)
        assert_corpora_equal(corpus, load_corpus_binary(binary))
