"""Tests for repro.core.storage — corpus persistence."""

import io

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.corpus import AddressCorpus
from repro.core.storage import (
    load_corpus,
    load_corpus_binary,
    load_corpus_text,
    save_corpus,
    save_corpus_binary,
    save_corpus_text,
)


def sample_corpus():
    corpus = AddressCorpus("sample")
    corpus.record_interval(0x20010DB8 << 96 | 1, 10.0, 20.5, 3)
    corpus.record_interval(0x20010DB8 << 96 | 2, 0.25, 0.25, 1)
    corpus.record_interval((1 << 128) - 1, 1e9, 2e9, 100)
    return corpus


def assert_corpora_equal(a, b):
    assert a.name == b.name
    assert len(a) == len(b)
    assert dict(a.items()) == dict(b.items())


class TestTextFormat:
    def test_roundtrip(self):
        corpus = sample_corpus()
        stream = io.StringIO()
        written = save_corpus_text(corpus, stream)
        assert written == 3
        stream.seek(0)
        assert_corpora_equal(corpus, load_corpus_text(stream))

    def test_rejects_garbage_header(self):
        with pytest.raises(ValueError):
            load_corpus_text(io.StringIO("not a corpus\n"))

    def test_rejects_missing_columns(self):
        with pytest.raises(ValueError):
            load_corpus_text(io.StringIO("# repro-corpus v1 name=x\nbad\n"))

    def test_rejects_malformed_record(self):
        text = (
            "# repro-corpus v1 name=x\n"
            "address,first_seen,last_seen,count\n"
            "2001:db8::1,1.0\n"
        )
        with pytest.raises(ValueError):
            load_corpus_text(io.StringIO(text))

    def test_skips_comments_and_blanks(self):
        text = (
            "# repro-corpus v1 name=x\n"
            "address,first_seen,last_seen,count\n"
            "\n"
            "# comment\n"
            "2001:db8::1,1.0,2.0,2\n"
        )
        corpus = load_corpus_text(io.StringIO(text))
        assert len(corpus) == 1

    def test_empty_corpus(self):
        stream = io.StringIO()
        save_corpus_text(AddressCorpus("empty"), stream)
        stream.seek(0)
        loaded = load_corpus_text(stream)
        assert loaded.name == "empty"
        assert len(loaded) == 0


class TestBinaryFormat:
    def test_roundtrip(self):
        corpus = sample_corpus()
        stream = io.BytesIO()
        assert save_corpus_binary(corpus, stream) == 3
        stream.seek(0)
        assert_corpora_equal(corpus, load_corpus_binary(stream))

    def test_rejects_bad_magic(self):
        with pytest.raises(ValueError):
            load_corpus_binary(io.BytesIO(b"XXXX" + b"\x00" * 32))

    def test_rejects_truncation(self):
        corpus = sample_corpus()
        stream = io.BytesIO()
        save_corpus_binary(corpus, stream)
        data = stream.getvalue()[:-8]
        with pytest.raises(ValueError):
            load_corpus_binary(io.BytesIO(data))

    def test_timestamps_preserved_exactly(self):
        corpus = AddressCorpus("precise")
        corpus.record_interval(7, 0.1 + 0.2, 1e308, 1)
        stream = io.BytesIO()
        save_corpus_binary(corpus, stream)
        stream.seek(0)
        loaded = load_corpus_binary(stream)
        assert loaded.first_seen(7) == 0.1 + 0.2
        assert loaded.last_seen(7) == 1e308

    def test_smaller_than_text(self):
        corpus = sample_corpus()
        text = io.StringIO()
        save_corpus_text(corpus, text)
        binary = io.BytesIO()
        save_corpus_binary(corpus, binary)
        assert len(binary.getvalue()) < len(text.getvalue())


class TestPathInterface:
    def test_suffix_dispatch(self, tmp_path):
        corpus = sample_corpus()
        text_path = tmp_path / "c.corpus.csv"
        binary_path = tmp_path / "c.corpus.bin"
        save_corpus(corpus, text_path)
        save_corpus(corpus, binary_path)
        assert_corpora_equal(corpus, load_corpus(text_path))
        assert_corpora_equal(corpus, load_corpus(binary_path))
        # Binary file is not valid text input and vice versa.
        with pytest.raises(ValueError):
            load_corpus_binary(text_path.open("rb"))


class TestPropertyRoundtrip:
    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=(1 << 128) - 1),
            st.tuples(
                st.floats(min_value=0, max_value=1e12),
                st.floats(min_value=0, max_value=1e12),
                st.integers(min_value=1, max_value=1_000_000),
            ),
            max_size=30,
        )
    )
    def test_both_formats_roundtrip(self, records):
        corpus = AddressCorpus("prop")
        for address, (first, extra, count) in records.items():
            corpus.record_interval(address, first, first + extra, count)
        text = io.StringIO()
        save_corpus_text(corpus, text)
        text.seek(0)
        assert_corpora_equal(corpus, load_corpus_text(text))
        binary = io.BytesIO()
        save_corpus_binary(corpus, binary)
        binary.seek(0)
        assert_corpora_equal(corpus, load_corpus_binary(binary))
