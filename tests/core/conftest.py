"""Shared fixtures for core-layer tests: a small world and a short study.

The study fixture runs the full pipeline once per session; individual
tests interrogate slices of it.  Kept deliberately small (8 weeks) so the
whole core test module stays fast.
"""

import pytest

from repro.core import StudyConfig, run_study
from repro.world import CAMPAIGN_EPOCH, WorldConfig, build_world


@pytest.fixture(scope="session")
def core_world():
    return build_world(
        WorldConfig(
            seed=31,
            n_fixed_ases=10,
            n_cellular_ases=4,
            n_hosting_ases=4,
            n_home_networks=120,
            n_cellular_subscribers=80,
            n_hosting_networks=12,
        )
    )


@pytest.fixture(scope="session")
def study(core_world):
    return run_study(
        core_world,
        StudyConfig(start=CAMPAIGN_EPOCH, weeks=10, seed=31),
    )
