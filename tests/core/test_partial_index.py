"""Properties of the incremental (partial-index) analysis path.

Three contracts, each pinned bit-for-bit:

* **fold == rebuild** — folding seal-time partial indexes through
  :meth:`CorpusIndex.from_partials` produces the exact index a cold
  :meth:`CorpusIndex.build` over the merged corpus would, including
  empty segments, single-address segments and duplicate addresses
  spanning segment boundaries.
* **zero re-reads** — an indexed analysis over a committed store folds
  partials only; no sealed ``.seg`` file is opened (proved both by the
  reuse/rescan counters and by deleting every segment file outright).
* **partials are pure accelerators** — a missing, torn or stale ``.idx``
  silently falls back to rescanning the segment, never changing what
  analysis observes.

The kernels behind all of this must agree between their vectorized
(numpy) and portable (array-module) implementations; the suite forces
the fallback by nulling :data:`repro.core.kernels._np` and replays the
same properties.
"""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.kernels as kernels
from repro.addr.eui64 import mac_to_iid
from repro.addr.ipv6 import with_iid
from repro.core.corpus import AddressCorpus
from repro.core.index import CorpusIndex, PartialIndexColumns
from repro.core.segments import (
    PARTIAL_INDEX_SUFFIX,
    SegmentStore,
    SegmentedCorpusReader,
)
from repro.obs import MetricsRegistry

# Few /64s and a tiny IID pool: duplicate addresses across segments are
# the common case, not a lucky draw.
BLOCKS = [(0x2001 << 112) | (block << 96) for block in range(1, 4)]
MACS = [0x0011_22_00_00_00 + n for n in range(4)]

IIDS = st.one_of(
    st.just(0),
    st.integers(min_value=1, max_value=0xFF),
    st.sampled_from(MACS).map(mac_to_iid),
    st.integers(min_value=0, max_value=(1 << 64) - 1),
)

sighting = st.tuples(
    st.sampled_from(BLOCKS),
    st.integers(min_value=0, max_value=2),  # /48 selector
    st.integers(min_value=0, max_value=1),  # /64 selector
    IIDS,
    st.floats(min_value=0.0, max_value=3e7, allow_nan=False),
)

# A store: several segments, each possibly empty or single-address.
segment_lists = st.lists(
    st.lists(sighting, min_size=0, max_size=25), min_size=1, max_size=6
)


def build_corpus(name, events):
    corpus = AddressCorpus(name)
    for block, s48, s64, iid, when in events:
        corpus.record(with_iid(block | (s48 << 80) | (s64 << 64), iid), when)
    return corpus


def write_store(directory, segments, metrics=None):
    """Seal ``segments`` (one corpus each) and commit them all."""
    store = SegmentStore(directory, name="prop", metrics=metrics)
    metas = []
    for number, events in enumerate(segments):
        corpus = build_corpus("prop", events)
        metas.append(
            store.write_segment(
                corpus,
                segment_id=f"seg-{number:03d}",
                start_day=number * 7,
                end_day=(number + 1) * 7,
            )
        )
    store.commit(metas, completed_weeks=len(segments))
    return store


# array.array columns compared bit-for-bit; slash48s/slash64s are plain
# integer lists in both construction paths and compare by value.
ARRAY_COLUMNS = (
    "first",
    "last",
    "counts",
    "iids",
    "entropies",
    "pattern_codes",
    "macs",
)


def assert_bit_identical(folded, rebuilt):
    """Every column, aggregate and emission *order* matches exactly."""
    assert folded.addresses == rebuilt.addresses
    assert folded.slash48s == rebuilt.slash48s
    assert folded.slash64s == rebuilt.slash64s
    for column in ARRAY_COLUMNS:
        assert (
            getattr(folded, column).tobytes()
            == getattr(rebuilt, column).tobytes()
        ), column
    # Float aggregates compared through struct.pack: bit-for-bit, not
    # approximately, and including dict iteration order.
    assert _packed(folded.lifetimes()) == _packed(rebuilt.lifetimes())
    assert list(folded.iid_intervals().items()) == list(
        rebuilt.iid_intervals().items()
    )
    assert _packed_map(folded.iid_entropies()) == _packed_map(
        rebuilt.iid_entropies()
    )
    assert folded.eui64_mac_intervals() == rebuilt.eui64_mac_intervals()


def _packed(values):
    return struct.pack(f"<{len(values)}d", *values)


def _packed_map(mapping):
    return [(key, struct.pack("<d", value)) for key, value in mapping.items()]


class TestFoldEqualsRebuild:
    @settings(max_examples=40, deadline=None)
    @given(segments=segment_lists)
    def test_fold_equals_cold_rebuild(self, segments, tmp_path_factory):
        directory = tmp_path_factory.mktemp("store")
        store = write_store(directory, segments)
        reader = store.reader()
        folded = reader.build_index()
        # The reference: a cold full-scan rebuild over the corpus the
        # reader materializes from the same sealed segments.
        rebuilt = CorpusIndex.build(reader.load())
        assert_bit_identical(folded, rebuilt)

    def test_empty_segments_fold(self, tmp_path):
        store = write_store(tmp_path, [[], [], []])
        folded = store.reader().build_index()
        assert folded.addresses == []
        assert_bit_identical(folded, CorpusIndex.build(AddressCorpus("prop")))

    def test_single_address_segments_fold(self, tmp_path):
        segments = [
            [(BLOCKS[0], 0, 0, 5, 1.0)],
            [(BLOCKS[1], 1, 0, mac_to_iid(MACS[0]), 2.0)],
            [(BLOCKS[0], 0, 0, 5, 3.0)],  # duplicate across the boundary
        ]
        store = write_store(tmp_path, segments)
        folded = store.reader().build_index()
        rebuilt = CorpusIndex.build(store.reader().load())
        assert_bit_identical(folded, rebuilt)
        address = with_iid(BLOCKS[0], 5)
        row = folded.addresses.index(address)
        assert folded.first[row] == 1.0
        assert folded.last[row] == 3.0
        assert folded.counts[row] == 2

    @settings(max_examples=25, deadline=None)
    @given(segments=segment_lists)
    def test_load_indexed_equals_load(self, segments, tmp_path_factory):
        directory = tmp_path_factory.mktemp("store")
        reader = write_store(directory, segments).reader()
        indexed = reader.load_indexed()
        assert indexed.index is not None
        assert dict(indexed.items()) == dict(reader.load().items())


class TestZeroSegmentRereads:
    def _store(self, tmp_path, registry):
        segments = [
            [(BLOCKS[b], s, 0, iid, float(day))
             for iid in (0, 7, mac_to_iid(MACS[0]))
             for day, (b, s) in enumerate([(0, 0), (1, 1), (2, 0)])]
            for b in range(3) for s in range(2)
        ]
        return write_store(tmp_path, segments, metrics=registry), segments

    def test_indexed_analysis_reads_no_segments(self, tmp_path):
        registry = MetricsRegistry()
        store, segments = self._store(tmp_path, registry)
        reader = store.reader()
        reader.build_index()
        reused = registry.counter_value("repro_index_segments_reused_total")
        assert reused == len(segments) > 0
        assert (
            registry.counter_value("repro_index_segments_rescanned_total")
            == 0
        )

    def test_indexed_load_survives_deleted_segments(self, tmp_path):
        # The strongest possible zero-reread proof: after every .seg is
        # deleted, the partial-index path still reproduces the corpus.
        registry = MetricsRegistry()
        store, segments = self._store(tmp_path, registry)
        expected = dict(store.reader().load().items())
        for meta in store.reader().segments():
            store.segment_path(meta).unlink()
        corpus = SegmentedCorpusReader.open(
            tmp_path, metrics=registry
        ).load_indexed()
        assert dict(corpus.items()) == expected
        assert corpus.index is not None


class TestPartialFallback:
    def _one_segment_store(self, tmp_path, registry):
        return write_store(
            tmp_path, [[(BLOCKS[0], 0, 0, 5, 1.0)]], metrics=registry
        )

    def _folded(self, store, registry):
        folded = store.reader().build_index()
        return (
            folded,
            registry.counter_value("repro_index_segments_reused_total"),
            registry.counter_value("repro_index_segments_rescanned_total"),
        )

    def test_missing_partial_falls_back_to_rescan(self, tmp_path):
        registry = MetricsRegistry()
        store = self._one_segment_store(tmp_path, registry)
        meta = store.reader().segments()[0]
        store.partial_index_path(meta).unlink()
        folded, reused, rescanned = self._folded(store, registry)
        assert (reused, rescanned) == (0, 1)
        assert_bit_identical(folded, CorpusIndex.build(store.load_segment(meta)))

    def test_corrupt_partial_falls_back_to_rescan(self, tmp_path):
        registry = MetricsRegistry()
        store = self._one_segment_store(tmp_path, registry)
        meta = store.reader().segments()[0]
        path = store.partial_index_path(meta)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        folded, reused, rescanned = self._folded(store, registry)
        assert (reused, rescanned) == (0, 1)
        assert_bit_identical(folded, CorpusIndex.build(store.load_segment(meta)))

    def test_stale_partial_from_older_generation_is_rejected(self, tmp_path):
        # A partial bound to a previous seal of the segment id (different
        # checksum) must not be trusted for the rewritten segment.
        registry = MetricsRegistry()
        store = SegmentStore(tmp_path, name="prop", metrics=registry)
        first = store.write_segment(
            build_corpus("prop", [(BLOCKS[0], 0, 0, 5, 1.0)]),
            segment_id="seg-000", start_day=0, end_day=7,
        )
        stale = store.partial_index_path(first).read_bytes()
        second = store.write_segment(
            build_corpus("prop", [(BLOCKS[1], 0, 0, 6, 2.0)]),
            segment_id="seg-000", start_day=0, end_day=7,
        )
        store.partial_index_path(second).write_bytes(stale)
        store.commit([second], completed_weeks=1)
        folded, reused, rescanned = self._folded(store, registry)
        assert (reused, rescanned) == (0, 1)
        assert folded.addresses == [with_iid(BLOCKS[1], 6)]

    def test_partial_roundtrip(self, tmp_path):
        corpus = build_corpus(
            "prop",
            [(BLOCKS[0], 0, 0, 5, 1.0), (BLOCKS[1], 1, 1, 9, 2.0)],
        )
        partial = PartialIndexColumns.from_corpus(corpus)
        clone = PartialIndexColumns.from_payload(
            partial.to_payload(), len(partial)
        )
        for name, _ in PartialIndexColumns.COLUMN_SPEC:
            assert (
                getattr(clone, name).tobytes()
                == getattr(partial, name).tobytes()
            ), name

    def test_partial_suffix_is_public(self, tmp_path):
        store = self._one_segment_store(tmp_path, MetricsRegistry())
        meta = store.reader().segments()[0]
        assert store.partial_index_path(meta).suffix == PARTIAL_INDEX_SUFFIX


class TestObserveEqualsRebuild:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(sighting, min_size=1, max_size=30),
        st.lists(sighting, min_size=0, max_size=30),
    )
    def test_appends_keep_index_equal_to_rebuild(self, base, extra):
        corpus = build_corpus("prop", base)
        index = corpus.build_index()
        # Materialize every memo first: observe() must maintain them
        # in place, not just the raw columns.
        index.lifetimes()
        index.iid_intervals()
        index.iid_entropies()
        index.eui64_mac_intervals()
        for block, s48, s64, iid, when in extra:
            corpus.record(
                with_iid(block | (s48 << 80) | (s64 << 64), iid), when
            )
        assert corpus.index is index
        assert_bit_identical(index, CorpusIndex.build(corpus))


@pytest.fixture
def forced_fallback(monkeypatch):
    """Run the kernels on the portable array-module path."""
    monkeypatch.setattr(kernels, "_np", None)


class TestKernelFallbackEquivalence:
    """numpy and array-module kernels must agree bit-for-bit.

    Skipped where numpy is absent (CI): there the fallback *is* the
    only path and every other test in this file already exercises it.
    """

    pytestmark = pytest.mark.skipif(
        not kernels.HAVE_NUMPY, reason="numpy unavailable: nothing to compare"
    )

    @staticmethod
    def _on_fallback(call):
        """Run ``call`` with the numpy handle nulled (restored after)."""
        saved = kernels._np
        kernels._np = None
        try:
            return call()
        finally:
            kernels._np = saved

    @settings(max_examples=40, deadline=None)
    @given(segment_lists)
    def test_fold_matches_scalar_fold(self, segments):
        partials = [
            PartialIndexColumns.from_corpus(build_corpus("prop", events))
            for events in segments
        ]
        fast = kernels.fold_record_columns(partials)
        slow = self._on_fallback(
            lambda: kernels.fold_record_columns(partials)
        )
        assert fast[0] == slow[0]  # addresses, exact order
        for fast_col, slow_col in zip(fast[1:], slow[1:]):
            assert list(fast_col) == list(slow_col)
            assert [type(v) for v in fast_col] == [type(v) for v in slow_col]

    @settings(max_examples=60, deadline=None)
    @given(st.lists(IIDS, min_size=0, max_size=60))
    def test_feature_columns_match_scalar(self, iids):
        from array import array

        column = array("Q", iids)
        fast = kernels.iid_feature_columns(column)
        slow = self._on_fallback(
            lambda: kernels.iid_feature_columns(column)
        )
        for fast_col, slow_col in zip(fast[:3], slow[:3]):
            assert fast_col.tobytes() == slow_col.tobytes()
        assert _packed_map(fast[3]) == _packed_map(slow[3])

    def test_fallback_build_equals_numpy_build(
        self, forced_fallback, tmp_path
    ):
        segments = [
            [(BLOCKS[0], 0, 0, 5, 1.0), (BLOCKS[1], 0, 0, 0, 2.0)],
            [(BLOCKS[0], 0, 0, 5, 3.0)],
        ]
        store = write_store(tmp_path, segments)
        folded = store.reader().build_index()
        assert_bit_identical(folded, CorpusIndex.build(store.reader().load()))
