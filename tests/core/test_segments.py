"""Tests for repro.core.segments — the streaming segment store.

The load-bearing invariant: a corpus record is ``[first, last, count]``
and the per-address fold (min/max/sum) is associative and commutative,
so *any* segmentation of the observation stream — per record, per
4 KiB, one giant segment, or a compacted mix — must load back a corpus
byte-identical to the monolithic in-memory one.  On top of that, the
manifest must never reference a torn segment, whatever instant a crash
lands on.
"""

import io
import json
import os
import signal
import subprocess
import sys
import textwrap

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.corpus import AddressCorpus
from repro.core.segments import (
    DEFAULT_SEGMENT_BYTES,
    MANIFEST_CACHE_MAX_ENTRIES,
    MANIFEST_NAME,
    Manifest,
    SegmentBufferedCorpus,
    SegmentError,
    SegmentMeta,
    SegmentStore,
    SegmentedCorpusReader,
    clear_manifest_cache,
    manifest_cache_info,
)
from repro.core.storage import save_corpus_binary

# Flush budgets the property test pins: every record its own segment,
# a small page, and effectively infinite (one segment for everything).
THRESHOLDS = [1, 4096, 2 ** 62]

OBSERVATIONS = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=(1 << 128) - 1),
        st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
    ),
    min_size=0,
    max_size=120,
)


def corpus_bytes(corpus) -> bytes:
    buffer = io.BytesIO()
    save_corpus_binary(corpus, buffer)
    return buffer.getvalue()


def monolithic(observations) -> AddressCorpus:
    corpus = AddressCorpus("prop")
    for address, when in observations:
        corpus.record(address, when)
    return corpus


class TestFlushThresholdEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(observations=OBSERVATIONS)
    def test_any_flush_budget_loads_back_identical(
        self, observations, tmp_path_factory
    ):
        reference = corpus_bytes(monolithic(observations))
        for threshold in THRESHOLDS:
            directory = tmp_path_factory.mktemp("seg")
            store = SegmentStore(
                directory, name="prop", segment_bytes=threshold
            )
            buffered = SegmentBufferedCorpus("prop", store)
            buffered.set_window(0, 7)
            for address, when in observations:
                buffered.record(address, when)
            buffered.seal()
            store.commit(buffered.take_sealed(), completed_weeks=1)
            loaded = store.reader().load("prop")
            assert corpus_bytes(loaded) == reference, (
                f"threshold {threshold} diverged"
            )

    def test_one_record_budget_seals_per_mutation(self, tmp_path):
        store = SegmentStore(tmp_path, segment_bytes=1)
        buffered = SegmentBufferedCorpus("tiny", store)
        buffered.set_window(0, 7)
        for n in range(5):
            buffered.record(100 + n, float(n))
        assert len(buffered.sealed) == 5
        assert len(buffered) == 0


class TestSegmentStore:
    def test_commit_rejects_duplicate_segment_ids(self, tmp_path):
        store = SegmentStore(tmp_path)
        corpus = AddressCorpus("dup")
        corpus.record(1, 0.0)
        meta = store.write_segment(
            corpus, segment_id="a", start_day=0, end_day=7
        )
        store.commit([meta])
        with pytest.raises(ValueError, match="already committed"):
            store.commit([meta])

    def test_watermark_is_monotonic(self, tmp_path):
        store = SegmentStore(tmp_path)
        store.commit([], completed_weeks=4)
        store.commit([], completed_weeks=2)
        assert store.load_manifest().completed_weeks == 4

    def test_reader_requires_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            SegmentedCorpusReader.open(tmp_path)

    def test_manifest_round_trips_through_json(self, tmp_path):
        store = SegmentStore(tmp_path, name="rt")
        corpus = AddressCorpus("rt")
        corpus.record(42, 1.5)
        meta = store.write_segment(
            corpus, segment_id="d0", start_day=0, end_day=7
        )
        store.commit([meta], completed_weeks=1, metrics={"counters": {}})
        manifest = Manifest.from_json(
            json.loads((tmp_path / MANIFEST_NAME).read_text())
        )
        assert manifest.segments == [meta]
        assert manifest.completed_weeks == 1
        assert manifest.total_records == 1

    def test_rejects_foreign_manifest_format(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text('{"format": "other"}')
        store = SegmentStore(tmp_path)
        with pytest.raises(SegmentError, match="manifest"):
            store.load_manifest()

    def test_unreferenced_files_are_ignored(self, tmp_path):
        store = SegmentStore(tmp_path)
        corpus = AddressCorpus("c")
        corpus.record(7, 0.0)
        committed = store.write_segment(
            corpus, segment_id="live", start_day=0, end_day=7
        )
        # An orphan from a crashed attempt: on disk, never committed.
        store.write_segment(
            corpus, segment_id="orphan", start_day=0, end_day=7
        )
        store.commit([committed], completed_weeks=1)
        reader = store.reader()
        assert [meta.segment_id for meta in reader.segments()] == ["live"]
        assert len(reader) == 1


class TestIntegrityDetection:
    def _one_committed_segment(self, tmp_path):
        store = SegmentStore(tmp_path, name="x")
        corpus = AddressCorpus("x")
        for n in range(10):
            corpus.record(1000 + n, float(n))
        meta = store.write_segment(
            corpus, segment_id="seg", start_day=0, end_day=7
        )
        store.commit([meta], completed_weeks=1)
        return store, meta

    def test_truncated_segment_raises_naming_file(self, tmp_path):
        store, meta = self._one_committed_segment(tmp_path)
        path = store.segment_path(meta)
        path.write_bytes(path.read_bytes()[:-9])
        with pytest.raises(SegmentError) as excinfo:
            store.load_segment(meta)
        assert str(path) in str(excinfo.value)

    def test_bitflipped_segment_raises_crc_mismatch(self, tmp_path):
        store, meta = self._one_committed_segment(tmp_path)
        path = store.segment_path(meta)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(SegmentError, match="CRC"):
            store.load_segment(meta)

    def test_missing_segment_raises(self, tmp_path):
        store, meta = self._one_committed_segment(tmp_path)
        store.segment_path(meta).unlink()
        with pytest.raises(SegmentError, match="missing segment"):
            store.load_segment(meta)

    def test_manifest_mismatch_detected(self, tmp_path):
        store, meta = self._one_committed_segment(tmp_path)
        lying = SegmentMeta(
            segment_id=meta.segment_id,
            file=meta.file,
            start_day=meta.start_day,
            end_day=meta.end_day,
            records=meta.records + 1,
            size_bytes=meta.size_bytes,
            crc32=meta.crc32,
        )
        with pytest.raises(SegmentError, match="manifest says"):
            store.load_segment(lying)


class TestCompaction:
    def test_compaction_preserves_bytes_and_prunes_files(self, tmp_path):
        store = SegmentStore(tmp_path, name="c", segment_bytes=1)
        buffered = SegmentBufferedCorpus("c", store)
        buffered.set_window(0, 7)
        for n in range(30):
            buffered.record(5000 + (n % 11), float(n))
        buffered.seal()
        store.commit(buffered.take_sealed(), completed_weeks=1)
        before = corpus_bytes(store.reader().load("c"))
        segment_count = len(store.load_manifest().segments)
        assert segment_count > 1

        manifest = store.compact(small_bytes=DEFAULT_SEGMENT_BYTES)
        assert len(manifest.segments) == 1
        assert manifest.segments[0].segment_id == "compact-0001"
        after = corpus_bytes(SegmentedCorpusReader.open(tmp_path).load("c"))
        assert after == before
        live = {meta.file for meta in manifest.segments}
        on_disk = {p.name for p in tmp_path.glob("*.seg")}
        assert on_disk == live

    def test_compaction_noop_below_two_small_segments(self, tmp_path):
        store = SegmentStore(tmp_path, name="c")
        corpus = AddressCorpus("c")
        corpus.record(9, 0.0)
        meta = store.write_segment(
            corpus, segment_id="only", start_day=0, end_day=7
        )
        store.commit([meta], completed_weeks=1)
        manifest = store.compact()
        assert [m.segment_id for m in manifest.segments] == ["only"]
        assert manifest.compactions == 0


CRASH_SCRIPT = textwrap.dedent(
    """
    import os, sys
    from repro.core.corpus import AddressCorpus
    from repro.core.segments import SegmentBufferedCorpus, SegmentStore

    directory = sys.argv[1]
    kill_after = int(sys.argv[2])
    store = SegmentStore(directory, name="crash", segment_bytes=1)

    sealed = 0
    original = store.write_segment

    def counting(*args, **kwargs):
        global sealed
        meta = original(*args, **kwargs)
        sealed += 1
        if sealed >= kill_after:
            # This segment just became durable (but is not yet on
            # buffered.sealed); commit everything durable so far, then
            # die *instantly* (no cleanup, no atexit) while later
            # buffered records are still unflushed.
            store.commit(
                buffered.take_sealed() + [meta], completed_weeks=1
            )
            os.kill(os.getpid(), 9)
        return meta

    store.write_segment = counting
    buffered = SegmentBufferedCorpus("crash", store)
    buffered.set_window(0, 7)
    for n in range(50):
        buffered.record(7000 + n, float(n))
    """
)


class TestCrashSafety:
    @pytest.mark.parametrize("kill_after", [1, 3, 7])
    def test_manifest_never_references_a_torn_segment(
        self, tmp_path, kill_after
    ):
        """SIGKILL mid-campaign: whatever was committed must verify."""
        process = subprocess.run(
            [sys.executable, "-c", CRASH_SCRIPT, str(tmp_path), str(kill_after)],
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
            timeout=120,
        )
        assert process.returncode == -signal.SIGKILL
        reader = SegmentedCorpusReader.open(tmp_path)
        metas = reader.segments()
        assert len(metas) == kill_after
        # Every referenced segment loads and CRC-verifies; the fold is
        # exactly the records that had been sealed when the process died.
        loaded = reader.load()
        assert len(loaded) == kill_after
        assert reader.completed_weeks == 1

    def test_tail_sealed_on_clean_exit(self, tmp_path):
        """A buffer below the flush budget still reaches disk on exit.

        This was a data-loss bug: a campaign ending before the buffer
        crossed the byte budget silently dropped its unsealed tail.
        """
        store = SegmentStore(tmp_path, segment_bytes=1 << 20)
        with SegmentBufferedCorpus("tail", store) as buffered:
            buffered.set_window(0, 7)
            for n in range(10):
                buffered.record(9000 + n, float(n))
            assert buffered.estimated_bytes() < store.segment_bytes
            assert buffered.sealed == []
        assert len(buffered.sealed) == 1
        store.commit(buffered.take_sealed(), completed_weeks=1)
        assert len(SegmentedCorpusReader(store).load()) == 10

    def test_close_is_idempotent(self, tmp_path):
        store = SegmentStore(tmp_path, segment_bytes=1 << 20)
        buffered = SegmentBufferedCorpus("tail", store)
        buffered.set_window(0, 7)
        buffered.record(1, 0.0)
        assert buffered.close() is not None
        assert buffered.close() is None
        assert len(buffered.sealed) == 1

    def test_crash_ordering_tail_not_sealed_on_error(self, tmp_path):
        """On an in-flight error the tail stays unsealed by design.

        Sealing during exception unwind could mask the original error
        and persist records no commit will ever account for; recovery
        instead restarts from the manifest watermark.  The committed
        prefix must stay fully readable.
        """
        store = SegmentStore(tmp_path, segment_bytes=1 << 20)
        with pytest.raises(RuntimeError, match="mid-campaign"):
            with SegmentBufferedCorpus("tail", store) as buffered:
                buffered.set_window(0, 7)
                for n in range(10):
                    buffered.record(9000 + n, float(n))
                buffered.close()
                store.commit(buffered.take_sealed(), completed_weeks=1)
                buffered.set_window(7, 14)
                buffered.record(77, 8.0)
                raise RuntimeError("mid-campaign")
        # The second window's record died with the process state…
        assert buffered.sealed == []
        assert [p.name for p in tmp_path.glob("*.seg")] == [
            "d00000-00007-s000-0000.seg"
        ]
        # …and the committed week-1 prefix is untouched and verifies.
        reader = SegmentedCorpusReader(store)
        assert reader.completed_weeks == 1
        assert len(reader.load()) == 10

    def test_interrupted_write_leaves_no_temp_files(self, tmp_path):
        store = SegmentStore(tmp_path)
        corpus = AddressCorpus("t")
        corpus.record(3, 0.0)
        meta = store.write_segment(
            corpus, segment_id="t", start_day=0, end_day=7
        )
        store.commit([meta], completed_weeks=1)
        leftovers = [p.name for p in tmp_path.iterdir() if ".tmp-" in p.name]
        assert leftovers == []


class TestManifestCache:
    """The parsed-manifest cache: hits skip parsing, never staleness.

    Keyed by (path, mtime, size) with a CRC re-check behind it, primed
    by the writer's own commits, and always handing out mutation-safe
    copies — so a cached store behaves byte-identically to an uncached
    one under commits, external rewrites and deletion.
    """

    @pytest.fixture(autouse=True)
    def fresh_cache(self):
        clear_manifest_cache()
        yield
        clear_manifest_cache()

    def _committed_store(self, tmp_path, records=4):
        store = SegmentStore(tmp_path)
        corpus = AddressCorpus("cache")
        for n in range(records):
            corpus.record(100 + n, float(n))
        meta = store.write_segment(
            corpus, segment_id="one", start_day=0, end_day=7
        )
        store.commit([meta], completed_weeks=1)
        return store

    def test_repeat_loads_hit_without_reparsing(self, tmp_path):
        store = self._committed_store(tmp_path)
        # The commit primed the cache; no load has missed yet.
        assert manifest_cache_info()["misses"] == 0
        first = store.load_manifest()
        second = SegmentStore(tmp_path).load_manifest()  # new store, same path
        info = manifest_cache_info()
        assert info["hits"] == 2
        assert info["misses"] == 0
        assert first.to_json() == second.to_json()

    def test_commit_invalidates_for_other_readers(self, tmp_path):
        store = self._committed_store(tmp_path)
        before = store.load_manifest()
        extra = AddressCorpus("cache")
        extra.record(999, 1.0)
        meta = store.write_segment(
            extra, segment_id="two", start_day=7, end_day=14
        )
        store.commit([meta], completed_weeks=2)
        after = SegmentStore(tmp_path).load_manifest()
        assert len(before.segments) == 1
        assert len(after.segments) == 2
        assert after.completed_weeks == 2

    def test_external_rewrite_invalidates(self, tmp_path):
        store = self._committed_store(tmp_path)
        store.load_manifest()
        # Another process rewrites the manifest (different bytes).
        doc = json.loads((tmp_path / MANIFEST_NAME).read_text())
        doc["completed_weeks"] = 9
        blob = json.dumps(doc, indent=2, sort_keys=True) + "\n"
        os.utime(tmp_path / MANIFEST_NAME)  # ensure a stat change
        (tmp_path / MANIFEST_NAME).write_text(blob)
        assert store.load_manifest().completed_weeks == 9

    def test_same_bytes_new_stat_is_a_crc_hit(self, tmp_path):
        store = self._committed_store(tmp_path)
        raw = (tmp_path / MANIFEST_NAME).read_bytes()
        (tmp_path / MANIFEST_NAME).write_bytes(raw)  # rewrite, same bytes
        os.utime(tmp_path / MANIFEST_NAME, ns=(1, 1))  # force stat change
        hits_before = manifest_cache_info()["hits"]
        manifest = store.load_manifest()
        info = manifest_cache_info()
        assert info["hits"] == hits_before + 1
        assert info["misses"] == 0  # CRC matched: parse skipped
        assert manifest.completed_weeks == 1

    def test_returned_manifest_is_mutation_safe(self, tmp_path):
        store = self._committed_store(tmp_path)
        first = store.load_manifest()
        first.segments.append(first.segments[0])
        first.completed_weeks = 99
        second = store.load_manifest()
        assert len(second.segments) == 1
        assert second.completed_weeks == 1

    def test_deletion_drops_the_entry(self, tmp_path):
        store = self._committed_store(tmp_path)
        store.load_manifest()
        (tmp_path / MANIFEST_NAME).unlink()
        assert store.load_manifest() is None
        assert manifest_cache_info()["entries"] == 0

    def test_corrupt_manifest_not_cached(self, tmp_path):
        store = self._committed_store(tmp_path)
        (tmp_path / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(SegmentError, match="unreadable"):
            store.load_manifest()
        with pytest.raises(SegmentError, match="unreadable"):
            store.load_manifest()  # still failing: the error was not cached
        assert manifest_cache_info()["entries"] == 0

    def test_cache_is_bounded(self, tmp_path):
        for n in range(MANIFEST_CACHE_MAX_ENTRIES + 5):
            self._committed_store(tmp_path / f"store-{n:03d}")
        assert (
            manifest_cache_info()["entries"] == MANIFEST_CACHE_MAX_ENTRIES
        )
