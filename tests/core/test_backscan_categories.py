"""Tests for repro.core.backscan and repro.core.categories."""

import pytest

from repro.addr.patterns import AddressCategory
from repro.core.backscan import BackscanCampaign, BackscanReport
from repro.core.categories import (
    category_composition,
    compare_category_compositions,
    top_as_entropy_distributions,
)
from repro.world import DAY, WEEK


@pytest.fixture(scope="module")
def backscan_report(core_world, study):
    campaign = BackscanCampaign(core_world, study.campaign, vantage_count=5,
                                seed=9)
    # Backscan the study's final week.
    return campaign.run(start_day=63, days=7)


class TestBackscan:
    def test_majority_of_clients_respond(self, backscan_report):
        # The paper: about two-thirds responded.
        assert backscan_report.probed_clients > 0
        assert 0.4 < backscan_report.client_responsive_fraction < 0.95

    def test_random_targets_respond_less_than_clients(self, backscan_report):
        # The paper: 3.5% for random targets vs ~67% for clients.  The
        # magnitude is asserted at bench scale; the tiny test world only
        # guarantees the ordering (its aliased-AS share is outsized).
        assert backscan_report.random_probed > 0
        assert (
            backscan_report.random_responsive_fraction
            < backscan_report.client_responsive_fraction
        )

    def test_random_responders_are_aliased(self, backscan_report, core_world):
        for prefix in backscan_report.aliased_slash64s:
            asn = core_world.routing.origin_asn(prefix)
            assert core_world.profiles[asn].aliased

    def test_entropy_groups_partition_clients(self, backscan_report):
        assert (
            len(backscan_report.hit_entropies)
            + len(backscan_report.miss_entropies)
            == backscan_report.probed_clients
        )
        assert (
            len(backscan_report.hit_entropies)
            == backscan_report.responsive_clients
        )

    def test_clients_in_aliased_64s_covered(self, backscan_report):
        for client in backscan_report.clients_in_aliased_64s:
            prefix = client & ~((1 << 64) - 1)
            assert prefix in backscan_report.aliased_slash64s

    def test_empty_report_raises_on_fractions(self):
        report = BackscanReport()
        with pytest.raises(ValueError):
            report.client_responsive_fraction
        with pytest.raises(ValueError):
            report.random_responsive_fraction

    def test_validation(self, core_world, study):
        with pytest.raises(ValueError):
            BackscanCampaign(core_world, study.campaign, vantage_count=0)
        with pytest.raises(ValueError):
            BackscanCampaign(core_world, study.campaign, vantage_count=99)
        campaign = BackscanCampaign(core_world, study.campaign)
        with pytest.raises(ValueError):
            campaign.run(0, days=0)


class TestCategories:
    def test_composition_sums_to_one(self, core_world, study):
        fractions = category_composition(
            study.ntp,
            core_world.ipv6_origin_asn,
            core_world.ipv4_origin_asn,
        )
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_ntp_high_entropy_dominates(self, core_world, study):
        # The paper's Fig. 5: the NTP corpus is ~2/3 high entropy.
        fractions = category_composition(study.ntp)
        assert fractions[AddressCategory.HIGH_ENTROPY] > 0.4

    def test_hitlist_low_byte_exceeds_ntp(self, core_world, study):
        comparisons = compare_category_compositions(
            [study.ntp, study.hitlist]
        )
        ntp = comparisons["ntp-pool"]
        hitlist = comparisons["ipv6-hitlist"]
        assert (
            hitlist[AddressCategory.LOW_BYTE]
            > ntp[AddressCategory.LOW_BYTE]
        )

    def test_window_restricts(self, core_world, study):
        start = study.campaign.config.start
        day_window = (start + 7 * WEEK, start + 7 * WEEK + DAY)
        windowed = list(study.ntp.addresses_in_window(*day_window))
        assert 0 < len(windowed) < len(study.ntp)
        fractions = category_composition(study.ntp, window=day_window)
        assert sum(fractions.values()) == pytest.approx(1.0)


class TestTopAsEntropy:
    def test_top_ases_ranked_by_count(self, core_world, study):
        distributions = top_as_entropy_distributions(
            study.ntp, core_world.ipv6_origin_asn, top=5
        )
        assert 0 < len(distributions) <= 5
        sizes = [len(values) for values in distributions.values()]
        assert sizes == sorted(sizes, reverse=True)

    def test_as_name_labels(self, core_world, study):
        def name(asn):
            record = core_world.registry.lookup(asn)
            return record.name

        distributions = top_as_entropy_distributions(
            study.ntp, core_world.ipv6_origin_asn, top=3, as_name=name
        )
        for label in distributions:
            assert not label.startswith("AS")

    def test_entropies_in_range(self, core_world, study):
        distributions = top_as_entropy_distributions(
            study.ntp, core_world.ipv6_origin_asn, top=2
        )
        for values in distributions.values():
            assert all(0.0 <= value <= 1.0 for value in values)

    def test_rejects_bad_top(self, study, core_world):
        with pytest.raises(ValueError):
            top_as_entropy_distributions(
                study.ntp, core_world.ipv6_origin_asn, top=0
            )

    def test_window_variant(self, core_world, study):
        start = study.campaign.config.start
        distributions = top_as_entropy_distributions(
            study.ntp,
            core_world.ipv6_origin_asn,
            top=5,
            window=(start + 7 * WEEK, start + 7 * WEEK + DAY),
        )
        full = top_as_entropy_distributions(
            study.ntp, core_world.ipv6_origin_asn, top=5
        )
        assert sum(len(v) for v in distributions.values()) < sum(
            len(v) for v in full.values()
        )
