"""Tests for repro.core.compare and repro.core.lifetime against a study."""

import pytest

from repro.addr.entropy import EntropyClass
from repro.core import (
    address_lifetime_summary,
    compare_datasets,
    eui64_iid_lifetimes,
    iid_lifetimes_by_entropy,
    phone_provider_shares,
)
from repro.core.corpus import AddressCorpus


class TestCompareDatasets:
    @pytest.fixture(scope="class")
    def comparison(self, core_world, study):
        return compare_datasets(
            study.ntp,
            [study.hitlist, study.caida],
            core_world.ipv6_origin_asn,
        )

    def test_reference_first(self, comparison):
        assert comparison.reference.name == "ntp-pool"
        assert comparison.reference.common_addresses is None

    def test_ntp_largest(self, comparison):
        assert comparison.size_ratio("ipv6-hitlist") > 1.0
        assert comparison.size_ratio("caida-routed-48") > 1.0

    def test_ntp_densest_per_48(self, comparison):
        rows = {row.name: row for row in comparison.rows}
        assert (
            rows["ntp-pool"].avg_addresses_per_48
            > rows["ipv6-hitlist"].avg_addresses_per_48
            > rows["caida-routed-48"].avg_addresses_per_48
        )
        assert rows["caida-routed-48"].avg_addresses_per_48 == pytest.approx(
            1.0, abs=0.3
        )

    def test_active_datasets_see_more_ases(self, comparison):
        rows = {row.name: row for row in comparison.rows}
        assert rows["caida-routed-48"].asns >= rows["ntp-pool"].asns

    def test_overlap_is_small(self, comparison):
        assert comparison.overlap_fraction("caida-routed-48") < 0.05
        assert comparison.overlap_fraction("ipv6-hitlist") < 0.5

    def test_common_fields_bounded(self, comparison):
        for row in comparison.rows[1:]:
            assert 0 <= row.common_addresses <= row.addresses
            assert 0 <= row.common_asns <= row.asns
            assert 0 <= row.common_slash48s <= row.slash48s

    def test_render_contains_all_datasets(self, comparison):
        text = comparison.render()
        for row in comparison.rows:
            assert row.name in text

    def test_unknown_dataset_rejected(self, comparison):
        with pytest.raises(KeyError):
            comparison.size_ratio("nope")

    def test_empty_comparison_rejected(self):
        from repro.core.compare import DatasetComparison

        with pytest.raises(ValueError):
            DatasetComparison([])


class TestPhoneProviderShares:
    def test_ntp_more_mobile_than_hitlist(self, core_world, study):
        shares = phone_provider_shares(
            [study.ntp, study.hitlist],
            core_world.registry,
            core_world.ipv6_origin_asn,
        )
        # The paper: 14% (NTP) vs 2% (Hitlist).
        assert shares["ntp-pool"] > shares["ipv6-hitlist"]
        assert shares["ntp-pool"] > 0.05


class TestLifetimeSummary:
    def test_fractions_consistent(self, study):
        summary = address_lifetime_summary(study.ntp)
        assert summary.total == len(study.ntp)
        assert 0.0 <= summary.six_months_or_longer_fraction
        assert (
            summary.six_months_or_longer_fraction
            <= summary.month_or_longer_fraction
            <= summary.week_or_longer_fraction
            <= 1.0
        )

    def test_majority_seen_once(self, study):
        # The paper's >60% single-sighting effect.
        summary = address_lifetime_summary(study.ntp)
        assert summary.seen_once_fraction > 0.4

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            address_lifetime_summary(AddressCorpus("empty"))

    def test_distribution_matches_fractions(self, study):
        summary = address_lifetime_summary(study.ntp)
        assert summary.distribution.fraction_at(0.0) == pytest.approx(
            summary.seen_once_fraction
        )


class TestIidLifetimes:
    def test_buckets_partition(self, study):
        buckets = iid_lifetimes_by_entropy(study.ntp)
        total = sum(len(values) for values in buckets.values())
        assert total == len(study.ntp.iid_intervals())

    def test_low_entropy_persists_longer(self, study):
        # The paper's Fig. 2b finding, in expectation form.
        buckets = iid_lifetimes_by_entropy(study.ntp)
        low = buckets[EntropyClass.LOW]
        high = buckets[EntropyClass.HIGH]
        if len(low) > 20 and len(high) > 20:
            from repro.world import WEEK

            low_week = sum(1 for l in low if l >= WEEK) / len(low)
            high_week = sum(1 for l in high if l >= WEEK) / len(high)
            assert low_week > high_week

    def test_eui64_lifetimes_subset(self, study):
        lifetimes = eui64_iid_lifetimes(study.ntp)
        assert len(lifetimes) == len(study.ntp.eui64_mac_addresses())
        assert all(lifetime >= 0 for lifetime in lifetimes)
