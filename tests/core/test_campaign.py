"""Tests for repro.core.campaign — the passive NTP collection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.campaign import CampaignConfig, CaptureModel, NTPCampaign
from repro.ntp.client import TimeSource
from repro.world import CAMPAIGN_EPOCH, DAY


def make_campaign(world, weeks=2, **overrides):
    config = CampaignConfig(
        start=CAMPAIGN_EPOCH, weeks=weeks, seed=5, **overrides
    )
    return NTPCampaign(world, config)


class TestCampaignConfig:
    def test_end(self):
        config = CampaignConfig(start=0.0, weeks=2)
        assert config.end == 14 * DAY

    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignConfig(start=0.0, weeks=0)
        with pytest.raises(ValueError):
            CampaignConfig(start=0.0, background_per_country=-1)


class TestPoolAssembly:
    def test_vantages_joined_with_sinks(self, core_world):
        campaign = make_campaign(core_world)
        assert len(campaign.servers) == 27
        # Pool contains vantages plus background members.
        assert len(campaign.pool) > 27

    def test_capture_model_probabilities(self, core_world):
        campaign = make_campaign(core_world)
        model = campaign._capture_model
        for vantage in core_world.vantages:
            probability, vantages = model.capture(vantage.country)
            assert 0.0 < probability < 1.0
            assert vantages

    def test_capture_model_caches(self, core_world):
        campaign = make_campaign(core_world)
        first = campaign._capture_model.capture("US")
        second = campaign._capture_model.capture("US")
        assert first is second


class TestCollection:
    def test_run_collects(self, core_world):
        campaign = make_campaign(core_world)
        corpus = campaign.run()
        assert len(corpus) > 0

    def test_deterministic(self, core_world):
        a = make_campaign(core_world).run()
        b = make_campaign(core_world).run()
        assert len(a) == len(b)
        assert set(a.addresses()) == set(b.addresses())

    def test_fast_path_equivalent(self, core_world):
        full = make_campaign(core_world, full_packet_path=True).run()
        fast = make_campaign(core_world, full_packet_path=False).run()
        assert set(full.addresses()) == set(fast.addresses())

    def test_incremental_windows_accumulate(self, core_world):
        whole = make_campaign(core_world, weeks=2).run()
        split = make_campaign(core_world, weeks=2)
        split.run(0, 1)
        split.run(1, 2)
        assert set(split.corpus.addresses()) == set(whole.addresses())

    def test_window_validation(self, core_world):
        campaign = make_campaign(core_world, weeks=2)
        with pytest.raises(ValueError):
            campaign.run(1, 1)
        with pytest.raises(ValueError):
            campaign.run(0, 5)

    def test_observations_within_campaign_window(self, core_world):
        campaign = make_campaign(core_world)
        corpus = campaign.run()
        for address, (first, last, _) in corpus.items():
            assert campaign.config.start <= first
            assert last < campaign.config.end

    def test_server_stats_accumulate(self, core_world):
        campaign = make_campaign(core_world)
        campaign.run()
        total_responses = sum(
            server.stats.responses for server in campaign.servers.values()
        )
        total_observations = sum(
            count for _, (_, _, count) in campaign.corpus.items()
        )
        assert total_responses == total_observations

    def test_only_pool_clients_observed(self, core_world):
        campaign = make_campaign(core_world)
        corpus = campaign.run()
        # Every observed address must belong to a pool-using device at
        # observation time: spot-check that addresses resolve to routed
        # customer space.
        for address in list(corpus.addresses())[:100]:
            assert core_world.ipv6_origin_asn(address) is not None


class TestCapturedEvents:
    def test_matches_run_decisions(self, core_world):
        campaign = make_campaign(core_world)
        campaign.run(0, 1)
        replayed = set()
        for day in range(7):
            for when, client, vantage in campaign.captured_events_on_day(day):
                replayed.add(client)
        assert replayed == set(campaign.corpus.addresses())

    def test_vantage_filter(self, core_world):
        campaign = make_campaign(core_world)
        chosen = [core_world.vantages[0].address]
        events = list(campaign.captured_events_on_day(0, chosen))
        for _, _, vantage in events:
            assert vantage == chosen[0]
        all_events = list(campaign.captured_events_on_day(0))
        assert len(events) <= len(all_events)

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=5, deadline=None)
    def test_replay_is_exact_for_any_seed(self, core_world, seed):
        """captured_events_on_day must replay run()'s decisions verbatim.

        Backscanning re-derives the capture stream instead of storing
        it, so the replay must agree with the recording on the full
        (when, client, vantage) triple — not just the address set — for
        every seed.
        """
        campaign = NTPCampaign(
            core_world, CampaignConfig(start=CAMPAIGN_EPOCH, weeks=1, seed=seed)
        )
        delivered = []
        original_deliver = campaign._deliver

        def spying_deliver(client_address, when, vantage_address):
            delivered.append((when, client_address, vantage_address))
            original_deliver(client_address, when, vantage_address)

        campaign._deliver = spying_deliver
        campaign.run(0, 1)
        replayed = [
            event
            for day in range(7)
            for event in campaign.captured_events_on_day(day)
        ]
        assert sorted(delivered) == sorted(replayed)
        assert {client for _, client, _ in replayed} == set(
            campaign.corpus.addresses()
        )
