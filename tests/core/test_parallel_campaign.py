"""Tests for repro.core.parallel — sharded execution and checkpoints.

The load-bearing invariant: because every capture decision draws from
``split_rng(seed, "capture", device_id, day)``, partitioning the device
population across processes and merging the per-shard corpora must
reproduce the serial corpus *exactly* — same addresses, same first/last
timestamps, same observation counts — for any worker or shard count.
"""

import io

import pytest

from repro.core.campaign import CampaignConfig, NTPCampaign
from repro.core.corpus import AddressCorpus
from repro.core.parallel import ShardSpec, run_campaign_parallel, run_shard
from repro.core.storage import (
    load_checkpoint,
    save_checkpoint,
    save_corpus_binary,
)
from repro.world import CAMPAIGN_EPOCH


def make_campaign(world, weeks=2, **overrides):
    config = CampaignConfig(
        start=CAMPAIGN_EPOCH, weeks=weeks, seed=5, **overrides
    )
    return NTPCampaign(world, config)


def records(corpus):
    return dict(corpus.items())


@pytest.fixture(scope="module")
def serial_corpus(core_world):
    return make_campaign(core_world).run()


class TestShardedIdentity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_workers_reproduce_serial_run(
        self, core_world, serial_corpus, workers
    ):
        campaign = make_campaign(core_world)
        merged = run_campaign_parallel(campaign, workers=workers)
        assert records(merged) == records(serial_corpus)
        assert merged is campaign.corpus

    def test_shard_count_independent_of_workers(
        self, core_world, serial_corpus
    ):
        campaign = make_campaign(core_world)
        merged = run_campaign_parallel(campaign, workers=2, shard_count=5)
        assert records(merged) == records(serial_corpus)

    def test_serialized_bytes_identical(self, core_world, serial_corpus):
        # Saves are canonically ordered, so the sharded corpus is
        # bit-identical to the serial one on disk, not just record-equal.
        campaign = make_campaign(core_world)
        run_campaign_parallel(campaign, workers=4)
        serial_bytes, sharded_bytes = io.BytesIO(), io.BytesIO()
        save_corpus_binary(serial_corpus, serial_bytes)
        save_corpus_binary(campaign.corpus, sharded_bytes)
        assert serial_bytes.getvalue() == sharded_bytes.getvalue()

    def test_in_process_shards_partition_devices(
        self, core_world, serial_corpus
    ):
        # Shards computed directly (no pool) also merge to the serial run.
        merged = AddressCorpus("merged")
        for index in range(3):
            shard = make_campaign(core_world)
            shard.run(shard_index=index, shard_count=3)
            merged.merge(shard.corpus)
        assert records(merged) == records(serial_corpus)

    def test_run_shard_matches_in_process(self, core_world):
        spec = ShardSpec(
            world_config=core_world.config,
            campaign_config=CampaignConfig(
                start=CAMPAIGN_EPOCH, weeks=2, seed=5
            ),
            shard_index=0,
            shard_count=2,
            start_week=0,
            end_week=2,
        )
        worker_corpus = run_shard(spec)
        local = make_campaign(core_world)
        local.run(shard_index=0, shard_count=2)
        assert records(worker_corpus) == records(local.corpus)


class TestCheckpointing:
    def test_checkpoint_written_per_window(self, core_world, tmp_path):
        path = tmp_path / "ntp.ckpt"
        campaign = make_campaign(core_world)
        run_campaign_parallel(campaign, workers=2, checkpoint=path)
        corpus, completed = load_checkpoint(path)
        assert completed == 2
        assert records(corpus) == records(campaign.corpus)

    def test_resume_restarts_at_last_window(
        self, core_world, serial_corpus, tmp_path
    ):
        path = tmp_path / "ntp.ckpt"
        # Interrupted run: only week 0 completes before the "crash".
        interrupted = make_campaign(core_world)
        run_campaign_parallel(
            interrupted, workers=2, checkpoint=path, end_week=1
        )
        _, completed = load_checkpoint(path)
        assert completed == 1
        # A fresh process resumes from the snapshot and finishes.
        resumed = make_campaign(core_world)
        run_campaign_parallel(
            resumed, workers=2, checkpoint=path, resume_from=path
        )
        assert records(resumed.corpus) == records(serial_corpus)
        corpus, completed = load_checkpoint(path)
        assert completed == 2
        assert records(corpus) == records(serial_corpus)

    def test_resume_serial_path(self, core_world, serial_corpus, tmp_path):
        path = tmp_path / "ntp.ckpt"
        run_campaign_parallel(
            make_campaign(core_world), workers=1, checkpoint=path, end_week=1
        )
        resumed = make_campaign(core_world)
        run_campaign_parallel(resumed, workers=1, resume_from=path)
        assert records(resumed.corpus) == records(serial_corpus)

    def test_kill_mid_checkpoint_preserves_previous(
        self, core_world, tmp_path
    ):
        path = tmp_path / "ntp.ckpt"
        campaign = make_campaign(core_world)
        run_campaign_parallel(
            campaign, workers=1, checkpoint=path, end_week=1
        )
        good = load_checkpoint(path)

        class ExplodingCorpus(AddressCorpus):
            def items(self):
                iterator = super().items()
                yield next(iterator)
                raise OSError("simulated crash mid-write")

        exploding = ExplodingCorpus("ntp-pool")
        exploding.merge(campaign.corpus)
        with pytest.raises(OSError):
            save_checkpoint(exploding, path, 2)
        # The interrupted write must not have destroyed the snapshot,
        # nor left temp litter behind.
        corpus, completed = load_checkpoint(path)
        assert completed == good[1]
        assert records(corpus) == records(good[0])
        assert list(tmp_path.iterdir()) == [path]
        # ... and the surviving snapshot is still resumable.
        resumed = make_campaign(core_world)
        run_campaign_parallel(resumed, workers=1, resume_from=path)
        assert records(resumed.corpus) == records(
            make_campaign(core_world).run()
        )

    def test_checkpoint_ahead_of_window_rejected(
        self, core_world, tmp_path
    ):
        path = tmp_path / "ntp.ckpt"
        save_checkpoint(AddressCorpus("ntp-pool"), path, 5)
        campaign = make_campaign(core_world)
        with pytest.raises(ValueError):
            run_campaign_parallel(campaign, resume_from=path, end_week=1)


class TestValidation:
    def test_bad_workers(self, core_world):
        with pytest.raises(ValueError):
            run_campaign_parallel(make_campaign(core_world), workers=0)

    def test_bad_shard_count(self, core_world):
        with pytest.raises(ValueError):
            run_campaign_parallel(
                make_campaign(core_world), workers=2, shard_count=0
            )

    def test_bad_interval(self, core_world):
        with pytest.raises(ValueError):
            run_campaign_parallel(
                make_campaign(core_world), checkpoint_interval_weeks=0
            )

    def test_bad_window(self, core_world):
        with pytest.raises(ValueError):
            run_campaign_parallel(make_campaign(core_world), end_week=99)

    def test_campaign_shard_arguments(self, core_world):
        campaign = make_campaign(core_world)
        with pytest.raises(ValueError):
            campaign.run(shard_index=2, shard_count=2)
        with pytest.raises(ValueError):
            campaign.run(shard_index=-1, shard_count=2)
        with pytest.raises(ValueError):
            campaign.run(shard_count=0)
