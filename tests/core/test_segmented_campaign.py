"""End-to-end tests for segmented campaign execution and resume.

Acceptance invariant (ISSUE 5): a segmented campaign — any flush
budget, serial or sharded (workers 1/2/4), with or without a fault
plan — produces a corpus **bit-identical** to the monolithic in-memory
run, and resume restarts from the manifest rather than a whole-corpus
checkpoint.
"""

import io

import pytest

from repro.core.campaign import CampaignConfig, NTPCampaign
from repro.core.parallel import run_campaign_parallel
from repro.core.segments import MANIFEST_NAME, SegmentStore
from repro.core.storage import (
    resolve_resume_checkpoint,
    save_checkpoint,
    save_corpus_binary,
)
from repro.faults import FaultPlan
from repro.world import CAMPAIGN_EPOCH

WEEKS = 2
FAULTS = FaultPlan(
    seed=11,
    vantage_flap_rate=0.3,
    outage_duration=6 * 3600.0,
    packet_loss=0.1,
    corruption_rate=0.05,
)


def make_campaign(world, weeks=WEEKS, **overrides):
    config = CampaignConfig(
        start=CAMPAIGN_EPOCH, weeks=weeks, seed=5, **overrides
    )
    return NTPCampaign(world, config)


def corpus_bytes(corpus) -> bytes:
    buffer = io.BytesIO()
    save_corpus_binary(corpus, buffer)
    return buffer.getvalue()


@pytest.fixture(scope="module")
def serial_bytes(core_world):
    return corpus_bytes(make_campaign(core_world).run())


@pytest.fixture(scope="module")
def faulty_serial_bytes(core_world):
    return corpus_bytes(make_campaign(core_world, faults=FAULTS).run())


class TestSegmentedIdentity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_workers_reproduce_monolithic_bytes(
        self, core_world, serial_bytes, workers, tmp_path
    ):
        campaign = make_campaign(core_world)
        store = SegmentStore(tmp_path, name="ntp-pool", segment_bytes=4096)
        merged = run_campaign_parallel(
            campaign, workers=workers, segment_store=store
        )
        assert corpus_bytes(merged) == serial_bytes
        assert merged is campaign.corpus
        manifest = store.load_manifest()
        assert manifest.completed_weeks == WEEKS
        assert len(manifest.segments) > 1

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_fault_plan_reproduces_faulty_serial_bytes(
        self, core_world, faulty_serial_bytes, workers, tmp_path
    ):
        campaign = make_campaign(core_world, faults=FAULTS)
        store = SegmentStore(tmp_path, name="ntp-pool", segment_bytes=4096)
        merged = run_campaign_parallel(
            campaign, workers=workers, segment_store=store
        )
        assert corpus_bytes(merged) == faulty_serial_bytes

    def test_flush_budget_does_not_change_bytes(
        self, core_world, serial_bytes, tmp_path
    ):
        for budget in (1, 64 * 1024 * 1024):
            store = SegmentStore(
                tmp_path / str(budget), name="ntp-pool", segment_bytes=budget
            )
            merged = run_campaign_parallel(
                make_campaign(core_world), workers=2, segment_store=store
            )
            assert corpus_bytes(merged) == serial_bytes

    def test_segment_write_faults_leave_corpus_identical(
        self, core_world, serial_bytes, tmp_path
    ):
        """segfail exercises the retry path but never changes contents."""
        plan = FaultPlan(seed=3, segment_write_failure_rate=0.4)
        assert not plan.is_zero
        campaign = make_campaign(core_world, faults=plan)
        store = SegmentStore(
            tmp_path,
            name="ntp-pool",
            segment_bytes=4096,
            metrics=campaign.metrics,
        )
        merged = run_campaign_parallel(
            campaign, workers=1, segment_store=store
        )
        assert corpus_bytes(merged) == serial_bytes
        retries = campaign.metrics.counter_value(
            "repro_segment_flush_retries_total"
        )
        assert retries > 0

    def test_checkpoint_and_segments_are_mutually_exclusive(
        self, core_world, tmp_path
    ):
        store = SegmentStore(tmp_path / "seg")
        with pytest.raises(ValueError, match="mutually exclusive"):
            run_campaign_parallel(
                make_campaign(core_world),
                segment_store=store,
                checkpoint=tmp_path / "ck.bin",
            )

    def test_fresh_run_refuses_existing_manifest(self, core_world, tmp_path):
        store = SegmentStore(tmp_path, name="ntp-pool")
        run_campaign_parallel(
            make_campaign(core_world), segment_store=store, end_week=1
        )
        with pytest.raises(ValueError, match="already holds"):
            run_campaign_parallel(
                make_campaign(core_world),
                segment_store=SegmentStore(tmp_path, name="ntp-pool"),
            )


class TestManifestResume:
    def test_resume_from_manifest_watermark(
        self, core_world, serial_bytes, tmp_path
    ):
        store = SegmentStore(tmp_path, name="ntp-pool", segment_bytes=4096)
        run_campaign_parallel(
            make_campaign(core_world),
            workers=2,
            segment_store=store,
            end_week=1,
        )
        assert store.load_manifest().completed_weeks == 1

        resumed = run_campaign_parallel(
            make_campaign(core_world),
            workers=2,
            segment_store=SegmentStore(
                tmp_path, name="ntp-pool", segment_bytes=4096
            ),
            resume_from_segments=True,
        )
        assert corpus_bytes(resumed) == serial_bytes

    def test_resume_without_manifest_raises(self, core_world, tmp_path):
        with pytest.raises(FileNotFoundError, match="no segment manifest"):
            run_campaign_parallel(
                make_campaign(core_world),
                segment_store=SegmentStore(tmp_path),
                resume_from_segments=True,
            )

    def test_checkpoint_import_when_checkpoint_is_ahead(
        self, core_world, serial_bytes, tmp_path
    ):
        """Mixed resume: a 1-week manifest loses to a 1.5x checkpoint —
        the checkpoint becomes the store's baseline import segment."""
        checkpoint = tmp_path / "ck.bin"
        head = make_campaign(core_world)
        head.run(0, 1)
        save_checkpoint(head.corpus, checkpoint, 1)

        seg_dir = tmp_path / "segments"
        store = SegmentStore(seg_dir, name="ntp-pool", segment_bytes=4096)
        final = run_campaign_parallel(
            make_campaign(core_world),
            workers=2,
            segment_store=store,
            resume_from=checkpoint,
        )
        assert corpus_bytes(final) == serial_bytes
        ids = [m.segment_id for m in store.load_manifest().segments]
        assert "import-w0001" in ids

    def test_manifest_wins_when_it_covers_more_weeks(
        self, core_world, serial_bytes, tmp_path
    ):
        checkpoint = tmp_path / "ck.bin"
        head = make_campaign(core_world)
        head.run(0, 1)
        save_checkpoint(head.corpus, checkpoint, 1)

        seg_dir = tmp_path / "segments"
        run_campaign_parallel(
            make_campaign(core_world),
            segment_store=SegmentStore(seg_dir, name="ntp-pool"),
            end_week=2,
        )
        store = SegmentStore(seg_dir, name="ntp-pool")
        final = run_campaign_parallel(
            make_campaign(core_world),
            segment_store=store,
            resume_from=checkpoint,
        )
        assert corpus_bytes(final) == serial_bytes
        ids = [m.segment_id for m in store.load_manifest().segments]
        assert not any(name.startswith("import-") for name in ids)


class TestResolveResumeMixedDirectory:
    """resolve_resume_checkpoint with both a checkpoint and a manifest."""

    def _checkpoint(self, core_world, tmp_path, weeks):
        campaign = make_campaign(core_world)
        campaign.run(0, weeks)
        path = tmp_path / "ck.bin"
        save_checkpoint(campaign.corpus, path, weeks)
        return path, campaign.corpus

    def _manifest(self, core_world, tmp_path, weeks):
        seg_dir = tmp_path / "segments"
        store = SegmentStore(seg_dir, name="ntp-pool", segment_bytes=4096)
        corpus = run_campaign_parallel(
            make_campaign(core_world), segment_store=store, end_week=weeks
        )
        return seg_dir, corpus

    def test_manifest_preferred_when_further_along(
        self, core_world, tmp_path
    ):
        ck_path, _ = self._checkpoint(core_world, tmp_path, 1)
        seg_dir, seg_corpus = self._manifest(core_world, tmp_path, 2)
        corpus, weeks, used, skipped = resolve_resume_checkpoint(
            ck_path, segment_dir=seg_dir
        )
        assert weeks == 2
        assert used == seg_dir / MANIFEST_NAME
        assert corpus_bytes(corpus) == corpus_bytes(seg_corpus)
        assert skipped == []

    def test_tie_prefers_manifest(self, core_world, tmp_path):
        # Deterministic tie-break rule: when checkpoint and segment
        # directory cover the SAME number of weeks, the manifest (the
        # segment store) wins — its data is already durably segmented,
        # so resuming from it needs no whole-corpus rewrite.
        ck_path, ck_corpus = self._checkpoint(core_world, tmp_path, 2)
        seg_dir, seg_corpus = self._manifest(core_world, tmp_path, 2)
        corpus, weeks, used, skipped = resolve_resume_checkpoint(
            ck_path, segment_dir=seg_dir
        )
        assert weeks == 2
        assert used == seg_dir / MANIFEST_NAME
        assert corpus_bytes(corpus) == corpus_bytes(seg_corpus)
        # Both sources describe the same campaign prefix, so the pick
        # is invisible in the data — only in the resume mechanics.
        assert corpus_bytes(ck_corpus) == corpus_bytes(seg_corpus)
        assert skipped == []

    def test_tie_resume_does_not_import_checkpoint(
        self, core_world, serial_bytes, tmp_path
    ):
        # The campaign-level resume applies the same rule: on equal
        # weeks it resumes from the manifest watermark and never
        # rewrites the checkpoint into an import-w#### segment.
        checkpoint = tmp_path / "ck.bin"
        head = make_campaign(core_world)
        head.run(0, 1)
        save_checkpoint(head.corpus, checkpoint, 1)

        seg_dir, _ = self._manifest(core_world, tmp_path, 1)
        store = SegmentStore(seg_dir, name="ntp-pool")
        final = run_campaign_parallel(
            make_campaign(core_world),
            segment_store=store,
            resume_from=checkpoint,
        )
        assert corpus_bytes(final) == serial_bytes
        ids = [m.segment_id for m in store.load_manifest().segments]
        assert not any(name.startswith("import-") for name in ids)

    def test_checkpoint_preferred_when_further_along(
        self, core_world, tmp_path
    ):
        ck_path, ck_corpus = self._checkpoint(core_world, tmp_path, 2)
        seg_dir, _ = self._manifest(core_world, tmp_path, 1)
        corpus, weeks, used, skipped = resolve_resume_checkpoint(
            ck_path, segment_dir=seg_dir
        )
        assert weeks == 2
        assert used == ck_path
        assert corpus_bytes(corpus) == corpus_bytes(ck_corpus)

    def test_torn_manifest_segment_falls_back_to_checkpoint(
        self, core_world, tmp_path
    ):
        ck_path, ck_corpus = self._checkpoint(core_world, tmp_path, 1)
        seg_dir, _ = self._manifest(core_world, tmp_path, 2)
        store = SegmentStore(seg_dir, name="ntp-pool")
        victim = store.load_manifest().segments[0]
        path = store.segment_path(victim)
        path.write_bytes(path.read_bytes()[:-6])

        corpus, weeks, used, skipped = resolve_resume_checkpoint(
            ck_path, segment_dir=seg_dir
        )
        assert weeks == 1
        assert used == ck_path
        assert corpus_bytes(corpus) == corpus_bytes(ck_corpus)
        assert any(str(path) in str(error) for _, error in skipped)

    def test_manifest_only_directory_resumes_without_checkpoint(
        self, core_world, tmp_path
    ):
        seg_dir, seg_corpus = self._manifest(core_world, tmp_path, 1)
        corpus, weeks, used, skipped = resolve_resume_checkpoint(
            None, segment_dir=seg_dir
        )
        assert weeks == 1
        assert corpus_bytes(corpus) == corpus_bytes(seg_corpus)
