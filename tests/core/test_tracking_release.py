"""Tests for repro.core.tracking and repro.core.release."""

import io

import pytest

from repro.addr.eui64 import mac_to_address
from repro.addr.ipv6 import parse
from repro.core.corpus import AddressCorpus
from repro.core.release import build_release, verify_release_safety
from repro.core.tracking import (
    TRANSITION_THRESHOLD,
    TrackingClass,
    analyze_tracking,
    build_mac_tracks,
)

MAC = 0x001122334455
P = [parse(f"2001:db8:0:{i}::") for i in range(20)]


def synthetic_corpus(sightings):
    """sightings: list of (prefix64, time) for MAC."""
    corpus = AddressCorpus("synthetic")
    for prefix, when in sightings:
        corpus.record(mac_to_address(prefix, MAC), when)
    return corpus


def constant_maps(asn=1, country="US"):
    return (lambda a: asn), (lambda a: country)


class TestBuildMacTracks:
    def test_single_sighting(self):
        corpus = synthetic_corpus([(P[0], 10.0)])
        origin, country = constant_maps()
        tracks = build_mac_tracks(corpus, origin, country)
        track = tracks[MAC]
        assert track.transitions == 0
        assert not track.multi_slash64
        assert track.lifetime == 0.0
        assert track.slash64s == (P[0],)

    def test_transitions_counted_in_time_order(self):
        corpus = synthetic_corpus(
            [(P[0], 0.0), (P[1], 10.0), (P[0], 20.0)]
        )
        # Note: address (P[0], MAC) has interval [0, 20]; orders by
        # first_seen so sequence is P0, P1 -> 1 transition.
        origin, country = constant_maps()
        track = build_mac_tracks(corpus, origin, country)[MAC]
        assert track.transitions == 1
        assert len(track.slash64s) == 2

    def test_timeline_records_asn(self):
        corpus = synthetic_corpus([(P[0], 0.0), (P[1], 5.0)])
        origin, country = constant_maps(asn=7)
        track = build_mac_tracks(corpus, origin, country)[MAC]
        assert all(asn == 7 for _, _, asn in track.timeline)


class TestClassification:
    def _track(self, sightings, asns=None, countries=None):
        corpus = synthetic_corpus(sightings)
        asn_of = (
            (lambda a: asns[a & ((1 << 80) - 1) >> 64])
            if asns
            else (lambda a: 1)
        )
        return corpus, asn_of

    def test_mostly_static(self):
        corpus = synthetic_corpus([(P[0], 0.0), (P[1], 10.0)])
        origin, country = constant_maps()
        track = build_mac_tracks(corpus, origin, country)[MAC]
        assert track.classify() is TrackingClass.MOSTLY_STATIC

    def test_prefix_reassignment(self):
        sightings = [(P[i % 15], float(i)) for i in range(TRANSITION_THRESHOLD + 2)]
        corpus = synthetic_corpus(sightings)
        origin, country = constant_maps()
        track = build_mac_tracks(corpus, origin, country)[MAC]
        assert track.transitions > TRANSITION_THRESHOLD
        assert track.classify() is TrackingClass.PREFIX_REASSIGNMENT

    def test_changing_providers(self):
        corpus = synthetic_corpus([(P[0], 0.0), (P[1], 10.0)])
        origin = lambda a: 1 if (a >> 64) & 0xFFFF == 0 else 2
        country = lambda a: "BR"
        track = build_mac_tracks(corpus, origin, country)[MAC]
        assert len(track.asns) == 2
        assert track.classify() is TrackingClass.CHANGING_PROVIDERS

    def test_user_movement(self):
        sightings = [(P[i % 12], float(i)) for i in range(14)]
        corpus = synthetic_corpus(sightings)
        origin = lambda a: 1 + (((a >> 64) & 0xFFFF) % 2)
        country = lambda a: "CN"
        track = build_mac_tracks(corpus, origin, country)[MAC]
        assert track.classify() is TrackingClass.USER_MOVEMENT

    def test_mac_reuse(self):
        corpus = synthetic_corpus([(P[0], 0.0), (P[1], 10.0)])
        origin = lambda a: 1 if (a >> 64) & 0xFFFF == 0 else 2
        country = lambda a: "US" if (a >> 64) & 0xFFFF == 0 else "DE"
        track = build_mac_tracks(corpus, origin, country)[MAC]
        assert track.classify() is TrackingClass.MAC_REUSE


class TestAnalyzeTracking:
    def test_report_counts(self):
        corpus = synthetic_corpus([(P[0], 0.0), (P[1], 10.0)])
        corpus.record(parse("2001:db8::1"), 5.0)  # non-EUI-64
        origin, country = constant_maps()
        report = analyze_tracking(corpus, origin, country)
        assert report.corpus_size == 3
        assert report.eui64_addresses == 2
        assert report.unique_macs == 1
        assert report.multi_slash64_macs == 1
        assert report.eui64_fraction == pytest.approx(2 / 3)
        assert report.multi_slash64_fraction == 1.0
        assert report.classes[TrackingClass.MOSTLY_STATIC] == 1

    def test_exemplar(self):
        corpus = synthetic_corpus([(P[0], 0.0), (P[1], 10.0)])
        origin, country = constant_maps()
        report = analyze_tracking(corpus, origin, country)
        exemplar = report.exemplar(TrackingClass.MOSTLY_STATIC)
        assert exemplar is not None
        assert exemplar.mac == MAC
        assert report.exemplar(TrackingClass.MAC_REUSE) is None

    def test_slash64_counts(self):
        corpus = synthetic_corpus([(P[0], 0.0), (P[1], 10.0)])
        origin, country = constant_maps()
        report = analyze_tracking(corpus, origin, country)
        assert report.slash64_counts() == [2]

    def test_study_integration(self, core_world, study):
        report = analyze_tracking(
            study.ntp, core_world.ipv6_origin_asn, core_world.country_of
        )
        assert report.unique_macs > 0
        assert 0.0 < report.eui64_fraction < 0.3
        assert report.eui64_addresses > report.expected_random
        assert sum(report.classes.values()) == report.multi_slash64_macs


class TestRelease:
    def test_truncates_to_48(self, study):
        artifact = build_release(study.ntp)
        assert artifact.prefix_count == len(study.ntp.slash48_set())
        assert artifact.address_count == len(study.ntp)
        assert verify_release_safety(artifact) == []

    def test_lines_format(self):
        corpus = AddressCorpus("x")
        corpus.record(parse("2001:db8::1"), 0.0)
        corpus.record(parse("2001:db8::2"), 0.0)
        artifact = build_release(corpus)
        assert artifact.lines() == ["2001:db8::/48,2"]

    def test_write_includes_ethics_note(self):
        corpus = AddressCorpus("x")
        corpus.record(parse("2001:db8::1"), 0.0)
        stream = io.StringIO()
        build_release(corpus).write(stream)
        text = stream.getvalue()
        assert "withheld" in text
        assert "2001:db8::/48,1" in text

    def test_safety_audit_catches_leaks(self):
        from repro.core.release import ReleaseArtifact

        bad = ReleaseArtifact(
            source_name="bad",
            prefix_counts={parse("2001:db8::1"): 1},
        )
        violations = verify_release_safety(bad)
        assert violations
        assert "below /48" in violations[0]
