"""Algebraic property tests for corpus merging and persistence.

The study pipeline merges corpora from different vantages/windows and
round-trips them through storage; these laws are what make those
compositions safe in any order.
"""

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.corpus import AddressCorpus
from repro.core.storage import load_corpus_binary, save_corpus_binary

events = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=(1 << 64) - 1),  # address pool
        st.floats(min_value=0, max_value=1e9),
    ),
    max_size=60,
)


def corpus_from(name, event_list):
    corpus = AddressCorpus(name)
    for address, when in event_list:
        corpus.record(address, when)
    return corpus


def snapshot(corpus):
    return dict(corpus.items())


class TestMergeLaws:
    @given(events, events)
    def test_merge_commutes(self, left_events, right_events):
        ab = corpus_from("a", left_events)
        ab.merge(corpus_from("b", right_events))
        ba = corpus_from("a", right_events)
        ba.merge(corpus_from("b", left_events))
        assert snapshot(ab) == snapshot(ba)

    @given(events, events, events)
    @settings(max_examples=50)
    def test_merge_associates(self, e1, e2, e3):
        left = corpus_from("x", e1)
        mid = corpus_from("y", e2)
        mid.merge(corpus_from("z", e3))
        left.merge(mid)

        right = corpus_from("x", e1)
        right.merge(corpus_from("y", e2))
        right.merge(corpus_from("z", e3))
        assert snapshot(left) == snapshot(right)

    @given(events)
    def test_merge_with_empty_is_identity(self, event_list):
        corpus = corpus_from("x", event_list)
        before = snapshot(corpus)
        corpus.merge(AddressCorpus("empty"))
        assert snapshot(corpus) == before

    @given(events)
    def test_merge_preserves_interval_envelope(self, event_list):
        # Splitting a stream in two and merging must reproduce exactly
        # the single-stream corpus except for observation counts.
        whole = corpus_from("whole", event_list)
        half_a = corpus_from("a", event_list[::2])
        half_a.merge(corpus_from("b", event_list[1::2]))
        assert set(half_a.addresses()) == set(whole.addresses())
        for address in whole.addresses():
            assert half_a.first_seen(address) == whole.first_seen(address)
            assert half_a.last_seen(address) == whole.last_seen(address)

    @given(events)
    def test_merge_counts_additive(self, event_list):
        whole = corpus_from("whole", event_list)
        split = corpus_from("a", event_list[::2])
        split.merge(corpus_from("b", event_list[1::2]))
        for address in whole.addresses():
            assert split.observation_count(address) == (
                whole.observation_count(address)
            )


class TestStorageLaws:
    @given(events)
    @settings(max_examples=50)
    def test_save_load_is_identity(self, event_list):
        corpus = corpus_from("persisted", event_list)
        stream = io.BytesIO()
        save_corpus_binary(corpus, stream)
        stream.seek(0)
        loaded = load_corpus_binary(stream)
        assert snapshot(loaded) == snapshot(corpus)
        assert loaded.name == corpus.name

    @given(events, events)
    @settings(max_examples=50)
    def test_persist_then_merge_equals_merge_then_persist(self, e1, e2):
        direct = corpus_from("m", e1)
        direct.merge(corpus_from("n", e2))

        stream = io.BytesIO()
        save_corpus_binary(corpus_from("m", e1), stream)
        stream.seek(0)
        reloaded = load_corpus_binary(stream)
        reloaded.merge(corpus_from("n", e2))
        assert snapshot(reloaded) == snapshot(direct)
