"""Telemetry must observe the campaigns without perturbing them.

The anchor invariant (mirroring ``FaultPlan.none()``'s invisibility):
a campaign wired to a live :class:`MetricsRegistry` produces a corpus
**bit-identical** to one wired to :data:`NULL_REGISTRY` — metrics never
touch the keyed RNG.  On top of that, the counters must be *accurate*:
the injector's registry counters equal its plain-dict decision ledger,
sharded runs fold worker snapshots to exactly the serial totals, and
the executor's failure counter equals ``len(campaign.shard_failures)``.
"""

import io
import json

import pytest

from repro.core.campaign import CampaignConfig, NTPCampaign
from repro.core.parallel import run_campaign_parallel
from repro.core.storage import save_corpus_binary
from repro.faults import FaultPlan
from repro.obs import NULL_REGISTRY, MetricsRegistry
from repro.world import CAMPAIGN_EPOCH

FAULTS = FaultPlan(
    seed=9,
    vantage_flap_rate=0.3,
    outage_duration=6 * 3600.0,
    packet_loss=0.05,
    country_loss=(("BR", 0.3),),
    corruption_rate=0.02,
)


def make_campaign(world, faults=None, metrics=None, weeks=2):
    config = CampaignConfig(
        start=CAMPAIGN_EPOCH, weeks=weeks, seed=5, faults=faults
    )
    return NTPCampaign(world, config, metrics=metrics)


def corpus_bytes(corpus):
    stream = io.BytesIO()
    save_corpus_binary(corpus, stream)
    return stream.getvalue()


class TestMetricsInvisibility:
    def test_metered_corpus_is_bit_identical_to_unmetered(self, core_world):
        metered = make_campaign(core_world, metrics=MetricsRegistry())
        unmetered = make_campaign(core_world, metrics=NULL_REGISTRY)
        assert corpus_bytes(metered.run()) == corpus_bytes(unmetered.run())

    def test_metered_faulty_corpus_is_bit_identical_too(self, core_world):
        metered = make_campaign(
            core_world, faults=FAULTS, metrics=MetricsRegistry()
        )
        unmetered = make_campaign(
            core_world, faults=FAULTS, metrics=NULL_REGISTRY
        )
        assert corpus_bytes(metered.run()) == corpus_bytes(unmetered.run())

    def test_metered_parallel_matches_unmetered_serial(self, core_world):
        serial = make_campaign(core_world, metrics=NULL_REGISTRY).run()
        campaign = make_campaign(core_world, metrics=MetricsRegistry())
        merged = run_campaign_parallel(campaign, workers=2, shard_count=3)
        assert corpus_bytes(merged) == corpus_bytes(serial)


class TestCounterAccuracy:
    def test_queries_and_captures_counted(self, core_world):
        campaign = make_campaign(core_world)
        corpus = campaign.run()
        queries = campaign.metrics.counter_value("repro_campaign_queries_total")
        observations = campaign.metrics.counter_value(
            "repro_campaign_observations_total"
        )
        assert queries > 0
        assert observations == sum(
            record[2] for _, record in corpus.items()
        )

    def test_injector_counters_match_decision_ledger(self, core_world):
        campaign = make_campaign(core_world, faults=FAULTS)
        campaign.run()
        injector = campaign._injector
        assert injector is not None
        ledger = injector.decisions
        assert ledger["packets_lost"] > 0
        for decision, counter in [
            ("rotation_ejections", "repro_faults_rotation_ejections_total"),
            ("packets_lost", "repro_faults_packets_lost_total"),
            ("corruptions", "repro_faults_corruptions_total"),
        ]:
            assert campaign.metrics.counter_value(counter) == ledger[decision]

    def test_sharded_counters_fold_to_serial_totals(self, core_world):
        serial = make_campaign(core_world, faults=FAULTS)
        serial.run()
        sharded = make_campaign(core_world, faults=FAULTS)
        run_campaign_parallel(sharded, workers=2, shard_count=3)
        for name in (
            "repro_campaign_queries_total",
            "repro_campaign_captured_total",
            "repro_campaign_observations_total",
            "repro_faults_packets_lost_total",
            "repro_faults_rotation_ejections_total",
            "repro_faults_corruptions_total",
        ):
            assert sharded.metrics.counter_value(
                name
            ) == serial.metrics.counter_value(name), name

    def test_snapshot_round_trips_through_json(self, core_world):
        campaign = make_campaign(core_world, faults=FAULTS)
        campaign.run()
        snapshot = json.loads(json.dumps(campaign.metrics.snapshot()))
        restored = MetricsRegistry()
        restored.merge_snapshot(snapshot)
        assert restored.counter_value(
            "repro_campaign_queries_total"
        ) == campaign.metrics.counter_value("repro_campaign_queries_total")


@pytest.fixture()
def chaos(tmp_path, monkeypatch):
    tokens = tmp_path / "chaos-tokens"
    tokens.mkdir()
    monkeypatch.setenv("REPRO_CHAOS_TOKENS", str(tokens))
    monkeypatch.delenv("REPRO_CHAOS_SHARD", raising=False)
    monkeypatch.setenv("REPRO_CHAOS_MODE", "raise")

    def arm(count, mode="raise"):
        monkeypatch.setenv("REPRO_CHAOS_MODE", mode)
        for index in range(count):
            (tokens / f"token-{index}").touch()

    return arm


class TestExecutorTelemetry:
    def test_clean_run_counts_shards_and_no_failures(self, core_world):
        campaign = make_campaign(core_world, weeks=1)
        run_campaign_parallel(campaign, workers=2, shard_count=3)
        metrics = campaign.metrics
        assert metrics.counter_value("repro_shard_attempts_total") == 3
        assert metrics.counter_value("repro_shard_failures_total") == 0
        assert metrics.counter_value("repro_shard_retries_total") == 0
        merge = metrics.histogram("repro_shard_merge_records")
        assert merge.count == 3

    def test_failure_counter_matches_shard_failures(self, core_world, chaos):
        chaos(1, mode="raise")
        campaign = make_campaign(core_world, weeks=1)
        run_campaign_parallel(campaign, workers=2, retry_backoff=0.0)
        metrics = campaign.metrics
        assert len(campaign.shard_failures) == 1
        assert metrics.counter_value("repro_shard_failures_total") == len(
            campaign.shard_failures
        )
        assert metrics.counter_value("repro_shard_retries_total") == 1
        # The failed shard was submitted twice: 2 shards + 1 retry.
        assert metrics.counter_value("repro_shard_attempts_total") == 3

    def test_inline_degradation_counted(self, core_world, chaos):
        chaos(10, mode="raise")
        campaign = make_campaign(core_world, weeks=1)
        run_campaign_parallel(
            campaign, workers=2, max_shard_retries=0, retry_backoff=0.0
        )
        metrics = campaign.metrics
        inline = metrics.counter_value("repro_shard_inline_total")
        assert inline == sum(
            1 for f in campaign.shard_failures if f.action == "inline"
        )
        assert inline > 0
        assert metrics.counter_value("repro_shard_failures_total") == len(
            campaign.shard_failures
        )


class TestStudyMetrics:
    def test_stage_seconds_is_a_view_over_spans(self, study):
        stages = study.stage_seconds
        for stage in (
            "ntp-collection",
            "hitlist-snapshots",
            "caida-routed-48",
            "corpus-index",
        ):
            assert stage in stages
            assert stages[stage] >= 0.0
        assert stages == study.metrics.span_seconds()

    def test_study_report_carries_telemetry_section(self, core_world, study):
        from repro.analysis.report import study_report

        text = study_report(core_world, study)
        assert "operational telemetry:" in text
        assert "shard failures: 0" in text
        assert "queries evaluated:" in text
