"""Tests for shard retry, backoff and crash containment in the executor.

Real failures are injected through the ``REPRO_CHAOS_*`` environment
protocol (see :mod:`repro.faults.chaos`): token files in a directory,
each consumed by one induced failure, in either ``raise`` mode (the
worker raises, exercising the retry path) or ``kill`` mode (the worker
process hard-exits, breaking the process pool and exercising rebuild
containment).  Every recovery path must still merge to the serial
corpus exactly.
"""

import pytest

from repro.core.campaign import CampaignConfig, NTPCampaign
from repro.core.parallel import ShardFailure, run_campaign_parallel
from repro.world import CAMPAIGN_EPOCH


def make_campaign(world, weeks=1):
    return NTPCampaign(
        world, CampaignConfig(start=CAMPAIGN_EPOCH, weeks=weeks, seed=5)
    )


def records(corpus):
    return dict(corpus.items())


@pytest.fixture(scope="module")
def serial_corpus(core_world):
    return make_campaign(core_world).run()


@pytest.fixture()
def chaos(tmp_path, monkeypatch):
    """Arm the chaos hooks; returns a token-dropper."""
    tokens = tmp_path / "chaos-tokens"
    tokens.mkdir()
    monkeypatch.setenv("REPRO_CHAOS_TOKENS", str(tokens))
    monkeypatch.delenv("REPRO_CHAOS_SHARD", raising=False)
    monkeypatch.setenv("REPRO_CHAOS_MODE", "raise")

    def arm(count, mode="raise", shard=None):
        monkeypatch.setenv("REPRO_CHAOS_MODE", mode)
        if shard is not None:
            monkeypatch.setenv("REPRO_CHAOS_SHARD", str(shard))
        for index in range(count):
            (tokens / f"token-{index}").touch()
        return tokens

    return arm


class TestRaiseMode:
    def test_raised_shard_is_retried(self, core_world, serial_corpus, chaos):
        chaos(1, mode="raise")
        campaign = make_campaign(core_world)
        merged = run_campaign_parallel(
            campaign, workers=2, retry_backoff=0.0
        )
        assert records(merged) == records(serial_corpus)
        assert len(campaign.shard_failures) == 1
        failure = campaign.shard_failures[0]
        assert isinstance(failure, ShardFailure)
        assert failure.action == "retried"
        assert failure.attempt == 1
        assert "ChaosInjected" in failure.error

    def test_repeated_failures_degrade_to_inline(
        self, core_world, serial_corpus, chaos
    ):
        # Plenty of tokens targeting shard 0: every pool attempt fails,
        # so after max_shard_retries the shard is recomputed inline —
        # the campaign must complete rather than abort.
        chaos(10, mode="raise", shard=0)
        campaign = make_campaign(core_world)
        merged = run_campaign_parallel(
            campaign, workers=2, max_shard_retries=1, retry_backoff=0.0
        )
        assert records(merged) == records(serial_corpus)
        actions = [f.action for f in campaign.shard_failures]
        assert actions == ["retried", "inline"]
        assert all(
            f.shard_index == 0 for f in campaign.shard_failures
        )

    def test_zero_retries_goes_straight_inline(
        self, core_world, serial_corpus, chaos
    ):
        chaos(1, mode="raise")
        campaign = make_campaign(core_world)
        merged = run_campaign_parallel(
            campaign, workers=2, max_shard_retries=0, retry_backoff=0.0
        )
        assert records(merged) == records(serial_corpus)
        assert [f.action for f in campaign.shard_failures] == ["inline"]


class TestKillMode:
    def test_killed_worker_is_contained(
        self, core_world, serial_corpus, chaos
    ):
        # A worker hard-exiting breaks the whole ProcessPoolExecutor;
        # the executor must rebuild the pool, retry, and still produce
        # the exact serial corpus.
        chaos(1, mode="kill")
        campaign = make_campaign(core_world)
        merged = run_campaign_parallel(
            campaign, workers=2, retry_backoff=0.0
        )
        assert records(merged) == records(serial_corpus)
        assert campaign.shard_failures
        assert any("worker died" in f.error for f in campaign.shard_failures)
        assert all(f.action == "retried" for f in campaign.shard_failures)

    def test_kill_with_checkpointing_still_resumable(
        self, core_world, serial_corpus, chaos, tmp_path
    ):
        from repro.core.storage import load_checkpoint

        chaos(1, mode="kill")
        path = tmp_path / "ntp.ckpt"
        campaign = make_campaign(core_world)
        run_campaign_parallel(
            campaign, workers=2, checkpoint=path, retry_backoff=0.0
        )
        corpus, completed = load_checkpoint(path)
        assert completed == 1
        assert records(corpus) == records(serial_corpus)


class TestShardFailureRecords:
    def test_clean_run_records_nothing(self, core_world, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS_TOKENS", raising=False)
        campaign = make_campaign(core_world)
        run_campaign_parallel(campaign, workers=2)
        assert campaign.shard_failures == []


class TestValidation:
    def test_bad_max_shard_retries(self, core_world):
        with pytest.raises(ValueError):
            run_campaign_parallel(
                make_campaign(core_world), workers=2, max_shard_retries=-1
            )

    def test_bad_backoff(self, core_world):
        with pytest.raises(ValueError):
            run_campaign_parallel(
                make_campaign(core_world), workers=2, retry_backoff=-0.5
            )
        with pytest.raises(ValueError):
            run_campaign_parallel(
                make_campaign(core_world), workers=2, retry_backoff_cap=0.0
            )
