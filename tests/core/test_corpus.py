"""Tests for repro.core.corpus."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.addr.eui64 import mac_to_address
from repro.addr.ipv6 import parse
from repro.core.corpus import AddressCorpus

A = parse("2001:db8::1")
B = parse("2001:db8::2")
C = parse("2001:db9:1:2::3")


class TestRecording:
    def test_single_record(self):
        corpus = AddressCorpus("test")
        corpus.record(A, 10.0)
        assert len(corpus) == 1
        assert A in corpus
        assert corpus.first_seen(A) == 10.0
        assert corpus.last_seen(A) == 10.0
        assert corpus.lifetime(A) == 0.0
        assert corpus.observation_count(A) == 1

    def test_repeat_records_extend_interval(self):
        corpus = AddressCorpus("test")
        corpus.record(A, 10.0)
        corpus.record(A, 30.0)
        corpus.record(A, 20.0)
        assert corpus.first_seen(A) == 10.0
        assert corpus.last_seen(A) == 30.0
        assert corpus.lifetime(A) == 20.0
        assert corpus.observation_count(A) == 3

    def test_out_of_order_first(self):
        corpus = AddressCorpus("test")
        corpus.record(A, 30.0)
        corpus.record(A, 10.0)
        assert corpus.first_seen(A) == 10.0

    def test_record_interval(self):
        corpus = AddressCorpus("test")
        corpus.record_interval(A, 5.0, 15.0, count=4)
        assert corpus.lifetime(A) == 10.0
        assert corpus.observation_count(A) == 4

    def test_record_interval_validation(self):
        corpus = AddressCorpus("test")
        with pytest.raises(ValueError):
            corpus.record_interval(A, 10.0, 5.0)
        with pytest.raises(ValueError):
            corpus.record_interval(A, 5.0, 10.0, count=0)

    @pytest.mark.parametrize(
        "bad", [float("nan"), float("inf"), float("-inf")]
    )
    def test_record_rejects_non_finite(self, bad):
        corpus = AddressCorpus("test")
        with pytest.raises(ValueError):
            corpus.record(A, bad)

    @pytest.mark.parametrize(
        "first,last",
        [
            (float("nan"), 5.0),
            # NaN as `last` slipped past the old `last < first` guard,
            # since every NaN comparison is False.
            (5.0, float("nan")),
            (float("nan"), float("nan")),
            (float("-inf"), 5.0),
            (5.0, float("inf")),
        ],
    )
    def test_record_interval_rejects_non_finite(self, first, last):
        corpus = AddressCorpus("test")
        with pytest.raises(ValueError):
            corpus.record_interval(A, first, last)

    def test_from_history(self):
        corpus = AddressCorpus.from_history("h", {A: (1.0, 1.0), B: (2.0, 9.0)})
        assert len(corpus) == 2
        assert corpus.observation_count(A) == 1
        assert corpus.observation_count(B) == 2

    def test_merge(self):
        a = AddressCorpus("a")
        a.record(A, 5.0)
        b = AddressCorpus("b")
        b.record(A, 10.0)
        b.record(B, 1.0)
        a.merge(b)
        assert len(a) == 2
        assert a.lifetime(A) == 5.0

    def test_name_required(self):
        with pytest.raises(ValueError):
            AddressCorpus("")

    @pytest.mark.parametrize("name", ["a\nb", "a\rb", "\n"])
    def test_name_rejects_line_breaks(self, name):
        # A newline in the name would corrupt the text storage header.
        with pytest.raises(ValueError):
            AddressCorpus(name)

    def test_repr(self):
        corpus = AddressCorpus("x")
        assert "x" in repr(corpus)


class TestAggregates:
    def _corpus(self):
        corpus = AddressCorpus("test")
        corpus.record(A, 0.0)
        corpus.record(A, 100.0)
        corpus.record(B, 50.0)
        corpus.record(C, 75.0)
        return corpus

    def test_lifetimes(self):
        assert sorted(self._corpus().lifetimes()) == [0.0, 0.0, 100.0]

    def test_slash48_and_64_sets(self):
        corpus = self._corpus()
        assert len(corpus.slash48_set()) == 2  # db8::/48 and db9:1::/48
        assert len(corpus.slash64_set()) == 2

    def test_asn_set_and_counts(self):
        corpus = self._corpus()
        origin = lambda addr: 1 if addr in (A, B) else None
        assert corpus.asn_set(origin) == {1}
        counts = corpus.asn_counts(origin)
        assert counts[1] == 2
        assert counts[None] == 1

    def test_addresses_in_window(self):
        corpus = self._corpus()
        # A spans [0, 100]; B at 50; C at 75.
        assert set(corpus.addresses_in_window(40.0, 60.0)) == {A, B}
        assert set(corpus.addresses_in_window(200.0, 300.0)) == set()
        assert set(corpus.addresses_in_window(0.0, 1.0)) == {A}

    def test_common_addresses(self):
        a = self._corpus()
        b = AddressCorpus("other")
        b.record(A, 0.0)
        b.record(parse("2001:dead::1"), 0.0)
        assert a.common_addresses(b) == {A}
        assert b.common_addresses(a) == {A}

    def test_items(self):
        corpus = AddressCorpus("test")
        corpus.record(A, 1.0)
        assert list(corpus.items()) == [(A, (1.0, 1.0, 1))]


class TestIidViews:
    def test_iid_intervals_union(self):
        corpus = AddressCorpus("test")
        # Same IID (::5) in two prefixes.
        corpus.record(parse("2001:db8:0:1::5"), 10.0)
        corpus.record(parse("2001:db8:0:2::5"), 50.0)
        intervals = corpus.iid_intervals()
        assert intervals[5] == (10.0, 50.0)

    def test_eui64_views(self):
        corpus = AddressCorpus("test")
        mac = 0x001122334455
        addr1 = mac_to_address(parse("2001:db8:0:1::"), mac)
        addr2 = mac_to_address(parse("2001:db8:0:2::"), mac)
        corpus.record(addr1, 0.0)
        corpus.record(addr2, 10.0)
        corpus.record(A, 5.0)  # not EUI-64
        assert set(corpus.eui64_addresses()) == {addr1, addr2}
        by_mac = corpus.eui64_mac_addresses()
        assert set(by_mac) == {mac}
        assert sorted(by_mac[mac]) == sorted([addr1, addr2])

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=(1 << 128) - 1),
                st.floats(min_value=0, max_value=1e9),
            ),
            min_size=1,
            max_size=50,
        )
    )
    def test_interval_invariants(self, events):
        corpus = AddressCorpus("prop")
        for address, when in events:
            corpus.record(address, when)
        for address, (first, last, count) in corpus.items():
            assert first <= last
            assert count >= 1
        assert len(corpus) == len({address for address, _ in events})
