"""Tests for repro.core.outages and the world's outage injection."""

import pytest

from repro.core.campaign import CampaignConfig, NTPCampaign
from repro.core.outages import ASActivityRecorder, OutageEvent, detect_outages
from repro.world import CAMPAIGN_EPOCH, DAY, WorldConfig, build_world


class TestASActivityRecorder:
    def test_counts_per_as_day(self):
        recorder = ASActivityRecorder(lambda a: 64500, epoch=0.0)
        recorder(1, 10.0)
        recorder(2, 20.0)
        recorder(3, DAY + 5.0)
        assert recorder.series(64500, 3) == [2, 1, 0]
        assert recorder.ases() == [64500]

    def test_unrouted_skipped(self):
        recorder = ASActivityRecorder(lambda a: None, epoch=0.0)
        recorder(1, 10.0)
        assert recorder.ases() == []

    def test_multiple_ases(self):
        recorder = ASActivityRecorder(lambda a: a, epoch=0.0)
        recorder(1, 0.0)
        recorder(2, 0.0)
        assert recorder.ases() == [1, 2]


def synthetic_recorder(series_by_asn):
    recorder = ASActivityRecorder(lambda a: a, epoch=0.0)
    for asn, series in series_by_asn.items():
        for day, count in enumerate(series):
            for _ in range(count):
                recorder(asn, day * DAY + 1.0)
    return recorder


class TestDetectOutages:
    def test_detects_synthetic_outage(self):
        series = [20] * 10 + [0] * 4 + [20] * 10
        recorder = synthetic_recorder({1: series})
        events = detect_outages(recorder, len(series))
        assert len(events) == 1
        event = events[0]
        assert event.asn == 1
        assert event.start_day == 10
        assert event.end_day == 14
        assert event.duration_days == 4
        assert event.depth == 0.0
        assert event.baseline == 20.0

    def test_healthy_as_no_events(self):
        recorder = synthetic_recorder({1: [20, 18, 22, 19, 21] * 4})
        assert detect_outages(recorder, 20) == []

    def test_low_baseline_skipped(self):
        series = [2] * 10 + [0] * 5 + [2] * 5
        recorder = synthetic_recorder({1: series})
        assert detect_outages(recorder, 20, min_baseline=5.0) == []

    def test_short_dips_ignored(self):
        series = [20] * 10 + [0] + [20] * 9
        recorder = synthetic_recorder({1: series})
        assert detect_outages(recorder, 20, min_duration=2) == []

    def test_partial_collapse_counted_when_below_threshold(self):
        series = [20] * 10 + [3, 3, 3] + [20] * 7
        recorder = synthetic_recorder({1: series})
        events = detect_outages(recorder, 20, threshold=0.2)
        assert len(events) == 1
        assert 0.0 < events[0].depth <= 0.2

    def test_outage_at_series_end(self):
        series = [20] * 15 + [0] * 5
        recorder = synthetic_recorder({1: series})
        events = detect_outages(recorder, 20)
        assert events[0].end_day == 20

    def test_validation(self):
        recorder = synthetic_recorder({})
        with pytest.raises(ValueError):
            detect_outages(recorder, 0)
        with pytest.raises(ValueError):
            detect_outages(recorder, 10, threshold=1.0)
        with pytest.raises(ValueError):
            detect_outages(recorder, 10, min_duration=0)


class TestEndToEndOutageDetection:
    def test_injected_outage_is_detected(self):
        config = WorldConfig(
            seed=57,
            n_fixed_ases=8,
            n_cellular_ases=4,
            n_hosting_ases=4,
            n_home_networks=160,
            n_cellular_subscribers=60,
            n_hosting_networks=10,
            outage_as_count=1,
            outage_min_days=4,
            outage_max_days=6,
            campaign_weeks=8,
        )
        world = build_world(config)
        assert len(world.outages) == 1
        (outage_asn, windows), = world.outages.items()
        (start, end), = windows

        campaign = NTPCampaign(
            world, CampaignConfig(start=CAMPAIGN_EPOCH, weeks=8, seed=57)
        )
        recorder = ASActivityRecorder(
            world.ipv6_origin_asn, epoch=CAMPAIGN_EPOCH
        )
        campaign.extra_sinks.append(recorder)
        campaign.run()

        events = detect_outages(recorder, days=8 * 7, min_baseline=3.0)
        matching = [event for event in events if event.asn == outage_asn]
        if not matching:
            pytest.skip(
                "outage AS too small for detection at this scale "
                f"(baseline series: {recorder.series(outage_asn, 56)})"
            )
        event = matching[0]
        true_start = int((start - CAMPAIGN_EPOCH) // DAY)
        true_end = int((end - CAMPAIGN_EPOCH) // DAY)
        # Detected window overlaps the injected one.
        assert event.start_day < true_end
        assert event.end_day > true_start

    def test_probe_oracle_respects_outage(self):
        config = WorldConfig(
            seed=57,
            n_fixed_ases=8,
            n_cellular_ases=4,
            n_hosting_ases=4,
            n_home_networks=160,
            n_cellular_subscribers=60,
            n_hosting_networks=10,
            outage_as_count=1,
            campaign_weeks=8,
        )
        world = build_world(config)
        (outage_asn, windows), = world.outages.items()
        (start, end), = windows
        profile = world.profiles[outage_asn]
        # Find a device address that responds outside the outage window.
        for network in world.networks.values():
            if network.asn != outage_asn or network.firewalled:
                continue
            for device in network.present_devices(start - 3600.0):
                address = network.device_address(device, start - 3600.0)
                if world.probe(address, start - 3600.0) is not None:
                    inside = network.device_address(device, start + 1.0)
                    assert world.probe(inside, start + 1.0) is None
                    return
        pytest.skip("no probe-responsive device in the outage AS")
