"""Tests for checkpoint CRC footers, generation rotation and fallback.

A months-long collection writes thousands of checkpoints; eventually one
of them lands on a dying disk or gets truncated by a power cut.  The
storage layer must *detect* that (CRC32 footer) and the executor must
*survive* it (fall back to the newest rotated prior generation).
"""

import io

import pytest

from repro.core.campaign import CampaignConfig, NTPCampaign
from repro.core.corpus import AddressCorpus
from repro.core.parallel import run_campaign_parallel
from repro.core.storage import (
    CheckpointIntegrityError,
    CorpusFormatError,
    checkpoint_candidates,
    load_checkpoint,
    load_checkpoint_full,
    load_corpus,
    resolve_resume_checkpoint,
    save_checkpoint,
    save_corpus,
    save_corpus_binary,
)
from repro.world import CAMPAIGN_EPOCH


def make_corpus(n=5):
    corpus = AddressCorpus("ntp-pool")
    for index in range(n):
        corpus.record((0x2001 << 112) | index, 1000.0 + index)
    return corpus


def make_campaign(world, weeks=2):
    return NTPCampaign(
        world, CampaignConfig(start=CAMPAIGN_EPOCH, weeks=weeks, seed=5)
    )


def records(corpus):
    return dict(corpus.items())


class TestCorruptionDetection:
    def test_roundtrip_still_works(self, tmp_path):
        path = tmp_path / "c.ckpt"
        save_checkpoint(make_corpus(), path, 3)
        corpus, completed = load_checkpoint(path)
        assert completed == 3
        assert records(corpus) == records(make_corpus())

    def test_flipped_byte_detected(self, tmp_path):
        path = tmp_path / "c.ckpt"
        save_checkpoint(make_corpus(), path, 3)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointIntegrityError) as excinfo:
            load_checkpoint(path)
        assert str(path) in str(excinfo.value)
        assert "CRC" in str(excinfo.value)

    def test_truncation_detected(self, tmp_path):
        path = tmp_path / "c.ckpt"
        save_checkpoint(make_corpus(), path, 3)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 10])
        with pytest.raises(CheckpointIntegrityError) as excinfo:
            load_checkpoint(path)
        assert str(path) in str(excinfo.value)

    def test_footerless_legacy_checkpoint_rejected(self, tmp_path):
        # A pre-footer RPCW file has no integrity guarantee; resuming
        # from it silently would defeat the whole point.
        path = tmp_path / "c.ckpt"
        body = io.BytesIO()
        body.write(b"RPCW" + (3).to_bytes(4, "big"))
        save_corpus_binary(make_corpus(), body)
        path.write_bytes(body.getvalue())
        with pytest.raises(CheckpointIntegrityError):
            load_checkpoint(path)

    def test_wrong_magic_is_format_error(self, tmp_path):
        path = tmp_path / "c.ckpt"
        path.write_bytes(b"JUNKJUNKJUNKJUNK")
        with pytest.raises(CorpusFormatError) as excinfo:
            load_checkpoint(path)
        assert not isinstance(excinfo.value, CheckpointIntegrityError)


class TestTruncatedCorpus:
    def test_truncated_binary_corpus_names_file_and_offset(self, tmp_path):
        path = tmp_path / "ntp.corpus.bin"
        save_corpus(make_corpus(), path)
        data = path.read_bytes()
        cut = len(data) - 7  # mid-record
        path.write_bytes(data[:cut])
        with pytest.raises(CorpusFormatError) as excinfo:
            load_corpus(path)
        error = excinfo.value
        assert error.path == path
        assert error.offset is not None
        assert str(path) in str(error)
        assert "byte offset" in str(error)

    def test_truncated_header_is_an_error_not_empty(self, tmp_path):
        # Cutting the file inside the record-count field must raise —
        # historically a short read here yielded a silently empty corpus.
        path = tmp_path / "ntp.corpus.bin"
        save_corpus(make_corpus(), path)
        path.write_bytes(path.read_bytes()[:8])
        with pytest.raises(CorpusFormatError):
            load_corpus(path)


class TestGenerationRotation:
    def test_generations_rotate(self, tmp_path):
        path = tmp_path / "c.ckpt"
        for week in (1, 2, 3, 4):
            save_checkpoint(make_corpus(week), path, week)
        assert load_checkpoint(path)[1] == 4
        assert load_checkpoint(f"{path}.1")[1] == 3
        assert load_checkpoint(f"{path}.2")[1] == 2
        # Older generations are not retained.
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "c.ckpt", "c.ckpt.1", "c.ckpt.2",
        ]

    def test_keep_previous_zero_keeps_only_current(self, tmp_path):
        path = tmp_path / "c.ckpt"
        save_checkpoint(make_corpus(), path, 1, keep_previous=0)
        save_checkpoint(make_corpus(), path, 2, keep_previous=0)
        assert [p.name for p in tmp_path.iterdir()] == ["c.ckpt"]

    def test_candidates_order(self, tmp_path):
        path = tmp_path / "c.ckpt"
        names = [p.name for p in checkpoint_candidates(path)]
        assert names == ["c.ckpt", "c.ckpt.1", "c.ckpt.2"]


class TestResumeFallback:
    def test_resolve_prefers_newest_good(self, tmp_path):
        path = tmp_path / "c.ckpt"
        save_checkpoint(make_corpus(1), path, 1)
        save_checkpoint(make_corpus(2), path, 2)
        corpus, weeks, used, skipped = resolve_resume_checkpoint(path)
        assert (weeks, used, skipped) == (2, path, [])

    def test_resolve_falls_back_past_corruption(self, tmp_path):
        path = tmp_path / "c.ckpt"
        save_checkpoint(make_corpus(1), path, 1)
        save_checkpoint(make_corpus(2), path, 2)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0x01  # corrupt the newest generation
        path.write_bytes(bytes(data))
        corpus, weeks, used, skipped = resolve_resume_checkpoint(path)
        assert weeks == 1
        assert used == tmp_path / "c.ckpt.1"
        assert len(skipped) == 1
        assert skipped[0][0] == path

    def test_all_corrupt_raises(self, tmp_path):
        path = tmp_path / "c.ckpt"
        save_checkpoint(make_corpus(1), path, 1)
        save_checkpoint(make_corpus(2), path, 2)
        for candidate in checkpoint_candidates(path):
            if candidate.exists():
                candidate.write_bytes(b"garbage")
        with pytest.raises(CheckpointIntegrityError):
            resolve_resume_checkpoint(path)

    def test_missing_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            resolve_resume_checkpoint(tmp_path / "never.ckpt")

    def test_resolve_falls_back_past_two_corrupt_generations(self, tmp_path):
        # Both the newest checkpoint AND its `.1` rotation are bad; the
        # resolver must keep walking to `.2` rather than give up.
        path = tmp_path / "c.ckpt"
        save_checkpoint(make_corpus(1), path, 1)
        save_checkpoint(make_corpus(2), path, 2)
        save_checkpoint(make_corpus(3), path, 3)
        for victim in (path, tmp_path / "c.ckpt.1"):
            data = bytearray(victim.read_bytes())
            data[-1] ^= 0x01
            victim.write_bytes(bytes(data))
        corpus, weeks, used, skipped = resolve_resume_checkpoint(path)
        assert weeks == 1
        assert used == tmp_path / "c.ckpt.2"
        assert records(corpus) == records(make_corpus(1))
        assert [bad for bad, _ in skipped] == [path, tmp_path / "c.ckpt.1"]

    def test_campaign_resumes_from_fallback_generation(
        self, core_world, tmp_path
    ):
        # Full end-to-end: a two-week checkpointed run leaves the week-2
        # snapshot at `path` and week-1 at `path.1`.  Corrupting the
        # newest must not strand the campaign — the resume falls back to
        # week 1, recollects week 2, and matches the uninterrupted run.
        serial = make_campaign(core_world).run()
        path = tmp_path / "ntp.ckpt"
        first = make_campaign(core_world)
        run_campaign_parallel(first, workers=2, checkpoint=path)
        data = bytearray(path.read_bytes())
        data[len(data) // 3] ^= 0x40
        path.write_bytes(bytes(data))

        resumed = make_campaign(core_world)
        merged = run_campaign_parallel(
            resumed, workers=2, checkpoint=path, resume_from=path
        )
        assert records(merged) == records(serial)
        # The repaired checkpoint chain is good again.
        corpus, completed = load_checkpoint(path)
        assert completed == 2
        assert records(corpus) == records(serial)


class TestCheckpointMetrics:
    def test_metrics_block_round_trips(self, tmp_path):
        path = tmp_path / "c.ckpt"
        snapshot = {"counters": {"repro_campaign_queries_total": 42}}
        save_checkpoint(make_corpus(), path, 3, metrics=snapshot)
        corpus, completed, metrics = load_checkpoint_full(path)
        assert completed == 3
        assert records(corpus) == records(make_corpus())
        assert metrics == snapshot

    def test_metricless_checkpoint_reads_as_none(self, tmp_path):
        path = tmp_path / "c.ckpt"
        save_checkpoint(make_corpus(), path, 3)
        assert load_checkpoint_full(path)[2] is None

    def test_metrics_block_covered_by_crc(self, tmp_path):
        path = tmp_path / "c.ckpt"
        save_checkpoint(make_corpus(), path, 3, metrics={"counters": {}})
        data = bytearray(path.read_bytes())
        data[-10] ^= 0x08  # flip a bit inside the JSON payload
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointIntegrityError):
            load_checkpoint_full(path)

    def test_resumed_metrics_are_cumulative(self, core_world, tmp_path):
        # A full uninterrupted run's counters are the reference; a run
        # checkpointed at week 1 and resumed to week 2 must report the
        # same cumulative totals, not just the post-resume remainder.
        reference = make_campaign(core_world)
        run_campaign_parallel(reference, workers=2)

        path = tmp_path / "ntp.ckpt"
        first = make_campaign(core_world)
        run_campaign_parallel(
            first, workers=2, checkpoint=path, end_week=1
        )
        resumed = make_campaign(core_world)
        merged = run_campaign_parallel(
            resumed, workers=2, checkpoint=path, resume_from=path
        )
        assert records(merged) == records(reference.corpus)
        for name in (
            "repro_campaign_queries_total",
            "repro_campaign_captured_total",
            "repro_campaign_observations_total",
        ):
            assert resumed.metrics.counter_value(
                name
            ) == reference.metrics.counter_value(name), name
