"""Tests for repro.net.routing and repro.net.geodb."""

from collections import Counter

import pytest

from repro.addr import ipv6
from repro.net.geodb import GeoDatabase, country_histogram, top_country_share
from repro.net.prefixes import parse_ipv4_prefix, parse_prefix
from repro.net.routing import RoutedPrefix, RoutingTable


class TestRoutedPrefix:
    def test_equality_and_hash(self):
        a = RoutedPrefix(parse_prefix("2001:db8::/32"), 64496)
        b = RoutedPrefix(parse_prefix("2001:db8::/32"), 64496)
        c = RoutedPrefix(parse_prefix("2001:db8::/32"), 64497)
        assert a == b and a != c
        assert len({a, b}) == 1

    def test_rejects_bad_asn(self):
        with pytest.raises(ValueError):
            RoutedPrefix(parse_prefix("2001:db8::/32"), 0)

    def test_repr(self):
        routed = RoutedPrefix(parse_prefix("2001:db8::/32"), 64496)
        assert "AS64496" in repr(routed)


class TestRoutingTable:
    def test_announce_and_lookup(self):
        table = RoutingTable()
        table.announce(parse_prefix("2001:db8::/32"), 64496)
        assert table.origin_asn(ipv6.parse("2001:db8::1")) == 64496
        assert table.origin_asn(ipv6.parse("2001:db9::1")) is None
        assert table.is_routed(ipv6.parse("2001:db8::1"))
        assert not table.is_routed(ipv6.parse("2001:db9::1"))

    def test_most_specific_wins(self):
        table = RoutingTable()
        table.announce(parse_prefix("2001:db8::/32"), 64496)
        table.announce(parse_prefix("2001:db8:1::/48"), 64497)
        assert table.origin_asn(ipv6.parse("2001:db8:1::1")) == 64497
        assert table.origin_asn(ipv6.parse("2001:db8:2::1")) == 64496

    def test_covering_prefix(self):
        table = RoutingTable()
        table.announce(parse_prefix("2001:db8::/32"), 64496)
        assert table.covering_prefix(ipv6.parse("2001:db8::1")) == parse_prefix(
            "2001:db8::/32"
        )
        assert table.covering_prefix(ipv6.parse("2001:db9::1")) is None

    def test_reannouncement_replaces(self):
        table = RoutingTable()
        prefix = parse_prefix("2001:db8::/32")
        table.announce(prefix, 64496)
        table.announce(prefix, 64497)
        assert table.origin_asn(ipv6.parse("2001:db8::1")) == 64497
        assert len(table) == 1
        assert len(list(table.routed_prefixes())) == 1

    def test_routed_prefixes_order(self):
        table = RoutingTable()
        table.announce(parse_prefix("2001:db9::/32"), 1)
        table.announce(parse_prefix("2001:db8::/32"), 2)
        assert [routed.asn for routed in table.routed_prefixes()] == [1, 2]

    def test_prefixes_of(self):
        table = RoutingTable()
        table.announce(parse_prefix("2001:db8::/32"), 64496)
        table.announce(parse_prefix("2001:db9::/32"), 64496)
        table.announce(parse_prefix("2001:dba::/32"), 64497)
        assert len(table.prefixes_of(64496)) == 2
        assert table.prefixes_of(9999) == []

    def test_rejects_bad_asn(self):
        table = RoutingTable()
        with pytest.raises(ValueError):
            table.announce(parse_prefix("2001:db8::/32"), 0)

    def test_ipv4_table(self):
        table = RoutingTable(width=32)
        table.announce(parse_ipv4_prefix("192.0.2.0/24"), 64496)
        assert table.origin_asn(0xC0000201) == 64496
        assert table.width == 32

    def test_items(self):
        table = RoutingTable()
        table.announce(parse_prefix("2001:db8::/32"), 64496)
        assert list(table.items()) == [(parse_prefix("2001:db8::/32"), 64496)]


class TestGeoDatabase:
    def test_add_and_lookup(self):
        db = GeoDatabase()
        db.add(parse_prefix("2001:db8::/32"), "DE")
        assert db.country(ipv6.parse("2001:db8::1")) == "DE"
        assert db.country(ipv6.parse("2001:db9::1")) is None
        assert len(db) == 1

    def test_most_specific_wins(self):
        db = GeoDatabase()
        db.add(parse_prefix("2001:db8::/32"), "DE")
        db.add(parse_prefix("2001:db8:1::/48"), "FR")
        assert db.country(ipv6.parse("2001:db8:1::1")) == "FR"

    def test_rejects_bad_country(self):
        db = GeoDatabase()
        with pytest.raises(ValueError):
            db.add(parse_prefix("2001:db8::/32"), "Germany")

    def test_country_histogram(self):
        db = GeoDatabase()
        db.add(parse_prefix("2001:db8::/32"), "DE")
        histogram = country_histogram(
            [ipv6.parse("2001:db8::1"), ipv6.parse("2001:db8::2"),
             ipv6.parse("2001:db9::1")],
            db,
        )
        assert histogram["DE"] == 2
        assert histogram[None] == 1


class TestTopCountryShare:
    def test_basic(self):
        histogram = Counter({"IN": 50, "CN": 30, "US": 15, None: 100, "DE": 5})
        ranked, share = top_country_share(histogram, top=2)
        assert ranked == [("IN", 50), ("CN", 30)]
        assert share == pytest.approx(0.8)

    def test_fewer_countries_than_top(self):
        ranked, share = top_country_share(Counter({"DE": 10}), top=5)
        assert ranked == [("DE", 10)]
        assert share == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            top_country_share(Counter({None: 5}))
