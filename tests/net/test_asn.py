"""Tests for repro.net.asn — AS records and category aggregation."""

import pytest

from repro.net.asn import ASCategory, ASRecord, ASRegistry, ISPSubtype


def _record(asn=64496, **overrides):
    defaults = dict(
        asn=asn,
        name="Example Net",
        country="US",
        category=ASCategory.ISP,
        subtype=ISPSubtype.FIXED_LINE,
    )
    defaults.update(overrides)
    return ASRecord(**defaults)


class TestASRecord:
    def test_valid(self):
        record = _record()
        assert record.asn == 64496
        assert not record.is_phone_provider

    def test_phone_provider(self):
        record = _record(subtype=ISPSubtype.PHONE_PROVIDER)
        assert record.is_phone_provider

    def test_phone_subtype_without_isp_category_not_phone(self):
        record = _record(
            category=ASCategory.COMPUTER_IT, subtype=ISPSubtype.PHONE_PROVIDER
        )
        assert not record.is_phone_provider

    def test_rejects_zero_asn(self):
        with pytest.raises(ValueError):
            _record(asn=0)

    def test_rejects_oversize_asn(self):
        with pytest.raises(ValueError):
            _record(asn=1 << 32)

    @pytest.mark.parametrize("bad", ["usa", "us", "U", ""])
    def test_rejects_bad_country(self, bad):
        with pytest.raises(ValueError):
            _record(country=bad)

    def test_frozen(self):
        record = _record()
        with pytest.raises(AttributeError):
            record.asn = 1


class TestASRegistry:
    def test_register_lookup(self):
        registry = ASRegistry()
        record = _record()
        registry.register(record)
        assert registry.lookup(64496) is record
        assert 64496 in registry
        assert len(registry) == 1

    def test_duplicate_rejected(self):
        registry = ASRegistry()
        registry.register(_record())
        with pytest.raises(ValueError):
            registry.register(_record())

    def test_lookup_missing(self):
        assert ASRegistry().lookup(1) is None

    def test_iteration(self):
        registry = ASRegistry()
        registry.register(_record(asn=1))
        registry.register(_record(asn=2))
        assert [record.asn for record in registry] == [1, 2]

    def test_category_of(self):
        registry = ASRegistry()
        registry.register(_record(category=ASCategory.EDUCATION))
        assert registry.category_of(64496) is ASCategory.EDUCATION
        assert registry.category_of(9999) is None

    def test_category_counts(self):
        registry = ASRegistry()
        registry.register(_record(asn=1, category=ASCategory.ISP))
        registry.register(_record(asn=2, category=ASCategory.CONTENT))
        counts = registry.category_counts([1, 1, 2, 3])
        assert counts[ASCategory.ISP] == 2
        assert counts[ASCategory.CONTENT] == 1
        assert counts[None] == 1

    def test_phone_provider_fraction(self):
        registry = ASRegistry()
        registry.register(_record(asn=1, subtype=ISPSubtype.PHONE_PROVIDER))
        registry.register(_record(asn=2))
        # 3 of 4 addresses from the phone AS
        assert registry.phone_provider_fraction([1, 1, 1, 2]) == pytest.approx(
            0.75
        )

    def test_phone_provider_fraction_empty_rejected(self):
        with pytest.raises(ValueError):
            ASRegistry().phone_provider_fraction([])

    def test_countries_sorted_unique(self):
        registry = ASRegistry()
        registry.register(_record(asn=1, country="US"))
        registry.register(_record(asn=2, country="DE"))
        registry.register(_record(asn=3, country="US"))
        assert registry.countries() == ("DE", "US")
