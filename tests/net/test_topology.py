"""Tests for repro.net.topology — AS graph, paths, router addressing."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.addr import ipv6
from repro.net.prefixes import parse_prefix
from repro.net.topology import (
    ASTopology,
    RouterAddressPlan,
    preferential_attachment_topology,
)


def line_topology(*asns):
    topology = ASTopology()
    for a, b in zip(asns, asns[1:]):
        topology.add_link(a, b)
    return topology


class TestASTopology:
    def test_add_as_idempotent(self):
        topology = ASTopology()
        topology.add_as(1)
        topology.add_as(1)
        assert len(topology) == 1
        assert 1 in topology

    def test_add_link(self):
        topology = ASTopology()
        topology.add_link(1, 2)
        assert topology.neighbors(1) == (2,)
        assert topology.neighbors(2) == (1,)

    def test_link_idempotent(self):
        topology = ASTopology()
        topology.add_link(1, 2)
        topology.add_link(2, 1)
        assert topology.neighbors(1) == (2,)

    def test_self_link_rejected(self):
        with pytest.raises(ValueError):
            ASTopology().add_link(1, 1)

    def test_neighbors_sorted(self):
        topology = ASTopology()
        topology.add_link(1, 3)
        topology.add_link(1, 2)
        assert topology.neighbors(1) == (2, 3)

    def test_path_line(self):
        topology = line_topology(1, 2, 3, 4)
        assert topology.path(1, 4) == [1, 2, 3, 4]
        assert topology.distance(1, 4) == 3

    def test_path_self(self):
        topology = line_topology(1, 2)
        assert topology.path(1, 1) == [1]
        assert topology.distance(1, 1) == 0

    def test_path_disconnected(self):
        topology = ASTopology()
        topology.add_as(1)
        topology.add_as(2)
        assert topology.path(1, 2) is None
        assert topology.distance(1, 2) is None

    def test_path_unknown_as(self):
        topology = line_topology(1, 2)
        with pytest.raises(KeyError):
            topology.path(1, 99)
        with pytest.raises(KeyError):
            topology.path(99, 1)

    def test_path_shortest_taken(self):
        # 1-2-3 and 1-3 direct: shortest is direct.
        topology = line_topology(1, 2, 3)
        topology.add_link(1, 3)
        assert topology.path(1, 3) == [1, 3]

    def test_cache_invalidated_by_new_link(self):
        topology = line_topology(1, 2, 3)
        assert topology.path(1, 3) == [1, 2, 3]
        topology.add_link(1, 3)
        assert topology.path(1, 3) == [1, 3]

    def test_is_connected(self):
        assert ASTopology().is_connected()
        topology = line_topology(1, 2, 3)
        assert topology.is_connected()
        topology.add_as(9)
        assert not topology.is_connected()

    def test_deterministic_tie_break(self):
        # Two equal-length paths 1-2-4 and 1-3-4: BFS from 1 reaches 4 via
        # the lower-numbered neighbor first.
        topology = ASTopology()
        topology.add_link(1, 2)
        topology.add_link(1, 3)
        topology.add_link(2, 4)
        topology.add_link(3, 4)
        assert topology.path(1, 4) == [1, 2, 4]


class TestRouterAddressPlan:
    def _plan(self):
        topology = line_topology(1, 2, 3)
        infra = {
            1: parse_prefix("2001:db8:1::/48"),
            2: parse_prefix("2001:db8:2::/48"),
            # AS3 is a stub with no infrastructure space.
        }
        return topology, RouterAddressPlan(topology, infra)

    def test_interface_address_structure(self):
        _, plan = self._plan()
        address = plan.interface_address(2, 1)
        assert address is not None
        # AS2 neighbors sorted: (1, 3); link to 1 is index 0 -> first /64.
        assert ipv6.format_address(address) == "2001:db8:2::1"
        address = plan.interface_address(2, 3)
        assert ipv6.format_address(address) == "2001:db8:2:1::1"

    def test_interface_without_infra_is_none(self):
        _, plan = self._plan()
        assert plan.interface_address(3, 2) is None

    def test_unknown_link_rejected(self):
        _, plan = self._plan()
        with pytest.raises(KeyError):
            plan.interface_address(1, 3)

    def test_hop_addresses_along_path(self):
        topology, plan = self._plan()
        hops = plan.hop_addresses(topology.path(1, 3))
        assert len(hops) == 2
        assert ipv6.format_address(hops[0]) == "2001:db8:2::1"
        assert hops[1] is None  # stub AS3 has no infra space

    def test_all_interface_addresses(self):
        _, plan = self._plan()
        table = plan.all_interface_addresses()
        assert set(table) == {1, 2}
        assert len(table[2]) == 2

    def test_low_byte_iids(self):
        # Router interfaces use ::1 — the low-byte pattern of Fig. 5.
        _, plan = self._plan()
        for addresses in plan.all_interface_addresses().values():
            for address in addresses:
                assert ipv6.iid_of(address) == 1

    def test_rejects_long_infra_prefix(self):
        topology = line_topology(1, 2)
        with pytest.raises(ValueError):
            RouterAddressPlan(topology, {1: parse_prefix("2001:db8::/64")})


class TestPreferentialAttachment:
    def test_connected_and_complete(self):
        asns = list(range(100, 180))
        topology = preferential_attachment_topology(
            asns, random.Random(1), links_per_as=2
        )
        assert len(topology) == len(asns)
        assert topology.is_connected()

    def test_deterministic(self):
        asns = list(range(1, 50))
        a = preferential_attachment_topology(asns, random.Random(7))
        b = preferential_attachment_topology(asns, random.Random(7))
        assert {n: a.neighbors(n) for n in a.ases()} == {
            n: b.neighbors(n) for n in b.ases()
        }

    def test_skewed_degree_distribution(self):
        asns = list(range(1, 300))
        topology = preferential_attachment_topology(asns, random.Random(3))
        degrees = sorted(len(topology.neighbors(n)) for n in topology.ases())
        # Scale-free: max degree far exceeds the median.
        assert degrees[-1] > 4 * degrees[len(degrees) // 2]

    def test_small_inputs(self):
        assert len(preferential_attachment_topology([], random.Random(1))) == 0
        single = preferential_attachment_topology([5], random.Random(1))
        assert single.ases() == (5,)
        pair = preferential_attachment_topology([5, 6], random.Random(1))
        assert pair.neighbors(5) == (6,)

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            preferential_attachment_topology([1, 1], random.Random(1))

    def test_rejects_bad_links_per_as(self):
        with pytest.raises(ValueError):
            preferential_attachment_topology([1, 2], random.Random(1), 0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=3, max_value=60), st.integers(min_value=0, max_value=2**32 - 1))
    def test_always_connected(self, count, seed):
        asns = list(range(10, 10 + count))
        topology = preferential_attachment_topology(
            asns, random.Random(seed), links_per_as=2
        )
        assert topology.is_connected()
