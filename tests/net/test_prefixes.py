"""Tests for repro.net.prefixes — Prefix, trie, linear baseline."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.addr import ipv6
from repro.net.prefixes import (
    LinearPrefixTable,
    Prefix,
    PrefixTrie,
    parse_ipv4_prefix,
    parse_prefix,
)

addresses = st.integers(min_value=0, max_value=(1 << 128) - 1)


def prefix_strategy(width=128):
    @st.composite
    def build(draw):
        length = draw(st.integers(min_value=0, max_value=width))
        raw = draw(st.integers(min_value=0, max_value=(1 << width) - 1))
        shift = width - length
        return Prefix((raw >> shift) << shift, length, width)

    return build()


class TestPrefix:
    def test_parse(self):
        prefix = parse_prefix("2001:db8::/32")
        assert prefix.network == 0x20010DB8 << 96
        assert prefix.length == 32
        assert prefix.width == 128

    def test_parse_ipv4(self):
        prefix = parse_ipv4_prefix("192.0.2.0/24")
        assert prefix.network == 0xC0000200
        assert prefix.width == 32

    def test_parse_rejects_host_bits(self):
        with pytest.raises(ValueError):
            parse_prefix("2001:db8::1/32")

    def test_constructor_rejects_host_bits(self):
        with pytest.raises(ValueError):
            Prefix(1, 64, 128)

    def test_constructor_rejects_bad_width(self):
        with pytest.raises(ValueError):
            Prefix(0, 0, 64)

    def test_constructor_rejects_bad_length(self):
        with pytest.raises(ValueError):
            Prefix(0, 129, 128)

    def test_immutable(self):
        prefix = parse_prefix("2001:db8::/32")
        with pytest.raises(AttributeError):
            prefix.length = 48

    def test_contains(self):
        prefix = parse_prefix("2001:db8::/32")
        assert prefix.contains(ipv6.parse("2001:db8::1"))
        assert prefix.contains(ipv6.parse("2001:db8:ffff::1"))
        assert not prefix.contains(ipv6.parse("2001:db9::1"))

    def test_zero_length_contains_everything(self):
        prefix = Prefix(0, 0, 128)
        assert prefix.contains(0)
        assert prefix.contains((1 << 128) - 1)

    def test_contains_prefix(self):
        outer = parse_prefix("2001:db8::/32")
        inner = parse_prefix("2001:db8:1::/48")
        assert outer.contains_prefix(inner)
        assert not inner.contains_prefix(outer)
        assert outer.contains_prefix(outer)

    def test_subprefixes(self):
        prefix = parse_prefix("2001:db8::/46")
        subs = list(prefix.subprefixes(48))
        assert len(subs) == 4
        assert subs[0] == parse_prefix("2001:db8::/48")
        assert subs[3] == parse_prefix("2001:db8:3::/48")

    def test_subprefixes_identity(self):
        prefix = parse_prefix("2001:db8::/48")
        assert list(prefix.subprefixes(48)) == [prefix]

    def test_subprefixes_rejects_shorter(self):
        with pytest.raises(ValueError):
            list(parse_prefix("2001:db8::/48").subprefixes(32))

    def test_subprefixes_rejects_past_width(self):
        with pytest.raises(ValueError):
            list(parse_prefix("2001:db8::/48").subprefixes(129))

    def test_first_last_address(self):
        prefix = parse_prefix("2001:db8::/126")
        assert prefix.last_address - prefix.first_address == 3

    def test_str(self):
        assert str(parse_prefix("2001:db8::/32")) == "2001:db8::/32"
        assert str(parse_ipv4_prefix("10.0.0.0/8")) == "10.0.0.0/8"

    def test_ordering_and_hash(self):
        a = parse_prefix("2001:db8::/32")
        b = parse_prefix("2001:db9::/32")
        assert a < b
        assert len({a, parse_prefix("2001:db8::/32")}) == 1

    @given(prefix_strategy(), addresses)
    def test_contains_matches_bounds(self, prefix, address):
        expected = prefix.first_address <= address <= prefix.last_address
        assert prefix.contains(address) == expected


class TestPrefixTrie:
    def test_insert_and_exact(self):
        trie = PrefixTrie()
        prefix = parse_prefix("2001:db8::/32")
        trie.insert(prefix, "doc")
        assert trie.exact(prefix) == "doc"
        assert len(trie) == 1

    def test_exact_missing_raises(self):
        trie = PrefixTrie()
        with pytest.raises(KeyError):
            trie.exact(parse_prefix("2001:db8::/32"))

    def test_insert_no_replace(self):
        trie = PrefixTrie()
        prefix = parse_prefix("2001:db8::/32")
        trie.insert(prefix, 1)
        with pytest.raises(KeyError):
            trie.insert(prefix, 2, replace=False)
        trie.insert(prefix, 2)
        assert trie.exact(prefix) == 2
        assert len(trie) == 1

    def test_longest_match_prefers_specific(self):
        trie = PrefixTrie()
        trie.insert(parse_prefix("2001:db8::/32"), "short")
        trie.insert(parse_prefix("2001:db8:1::/48"), "long")
        match = trie.longest_match(ipv6.parse("2001:db8:1::1"))
        assert match is not None
        assert match[1] == "long"
        assert match[0] == parse_prefix("2001:db8:1::/48")
        assert trie.lookup(ipv6.parse("2001:db8:2::1")) == "short"

    def test_lookup_miss(self):
        trie = PrefixTrie()
        trie.insert(parse_prefix("2001:db8::/32"), "doc")
        assert trie.lookup(ipv6.parse("2001:db9::1")) is None
        assert trie.longest_match(ipv6.parse("2001:db9::1")) is None

    def test_default_route(self):
        trie = PrefixTrie()
        trie.insert(Prefix(0, 0, 128), "default")
        assert trie.lookup(ipv6.parse("2001:db8::1")) == "default"

    def test_lookup_rejects_out_of_range(self):
        trie = PrefixTrie()
        with pytest.raises(ValueError):
            trie.lookup(-1)
        with pytest.raises(ValueError):
            trie.lookup(1 << 128)

    def test_width_mismatch_rejected(self):
        trie = PrefixTrie(width=32)
        with pytest.raises(ValueError):
            trie.insert(parse_prefix("2001:db8::/32"), 1)

    def test_remove(self):
        trie = PrefixTrie()
        prefix = parse_prefix("2001:db8::/32")
        trie.insert(prefix, "doc")
        assert trie.remove(prefix) == "doc"
        assert len(trie) == 0
        assert prefix not in trie
        with pytest.raises(KeyError):
            trie.remove(prefix)

    def test_covering_order(self):
        trie = PrefixTrie()
        trie.insert(parse_prefix("2001:db8::/32"), 32)
        trie.insert(parse_prefix("2001:db8::/48"), 48)
        trie.insert(parse_prefix("2001:db8::/64"), 64)
        covers = list(trie.covering(ipv6.parse("2001:db8::1")))
        assert [value for _, value in covers] == [32, 48, 64]
        assert [p.length for p, _ in covers] == [32, 48, 64]

    def test_items_in_address_order(self):
        trie = PrefixTrie()
        prefixes = [
            parse_prefix("2001:db9::/32"),
            parse_prefix("2001:db8::/32"),
            parse_prefix("2001:db8:1::/48"),
        ]
        for index, prefix in enumerate(prefixes):
            trie.insert(prefix, index)
        got = [prefix for prefix, _ in trie.items()]
        assert got == sorted(prefixes)

    def test_contains(self):
        trie = PrefixTrie()
        prefix = parse_prefix("2001:db8::/32")
        assert prefix not in trie
        trie.insert(prefix, 1)
        assert prefix in trie

    def test_ipv4_width(self):
        trie = PrefixTrie(width=32)
        trie.insert(parse_ipv4_prefix("192.0.2.0/24"), 64496)
        assert trie.lookup(0xC0000201) == 64496
        assert trie.lookup(0xC0000301) is None

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            PrefixTrie(width=48)

    @given(st.lists(prefix_strategy(), min_size=1, max_size=30), addresses)
    def test_matches_linear_baseline(self, prefixes, address):
        trie = PrefixTrie()
        linear = LinearPrefixTable()
        for index, prefix in enumerate(prefixes):
            trie.insert(prefix, index)
            linear.insert(prefix, index)
        trie_match = trie.longest_match(address)
        linear_match = linear.longest_match(address)
        if linear_match is None:
            assert trie_match is None
        else:
            assert trie_match is not None
            # Same prefix; the value may differ only if duplicate prefixes
            # appeared (later insert replaces in both).
            assert trie_match[0] == linear_match[0]
            assert trie_match[1] == linear_match[1]


class TestLinearPrefixTable:
    def test_replace_semantics(self):
        table = LinearPrefixTable()
        prefix = parse_prefix("2001:db8::/32")
        table.insert(prefix, 1)
        table.insert(prefix, 2)
        assert len(table) == 1
        assert table.lookup(ipv6.parse("2001:db8::1")) == 2

    def test_no_replace_raises(self):
        table = LinearPrefixTable()
        prefix = parse_prefix("2001:db8::/32")
        table.insert(prefix, 1)
        with pytest.raises(KeyError):
            table.insert(prefix, 2, replace=False)

    def test_width_mismatch(self):
        table = LinearPrefixTable(width=32)
        with pytest.raises(ValueError):
            table.insert(parse_prefix("2001:db8::/32"), 1)

    def test_lookup_miss(self):
        assert LinearPrefixTable().lookup(5) is None
