"""Unit tests for the dependency-free metrics registry."""

import json

import pytest

from repro.obs import (
    DEFAULT_SIZE_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    MetricsRegistry,
    NULL_REGISTRY,
    NullMetricsRegistry,
)


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_things_total", "things")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert registry.counter_value("repro_things_total") == 5

    def test_counter_rejects_negative(self):
        counter = MetricsRegistry().counter("repro_things_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_counter_get_or_create_is_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("repro_x_total") is registry.counter(
            "repro_x_total"
        )

    def test_labelled_series_are_distinct(self):
        registry = MetricsRegistry()
        br = registry.counter("repro_x_total", labels={"country": "BR"})
        de = registry.counter("repro_x_total", labels={"country": "DE"})
        br.inc(3)
        de.inc(1)
        assert registry.counter_value(
            "repro_x_total", labels={"country": "BR"}
        ) == 3
        assert registry.counter_value(
            "repro_x_total", labels={"country": "DE"}
        ) == 1

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total")
        with pytest.raises(ValueError):
            registry.gauge("repro_x_total")

    def test_bad_name_raises(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("bad name")

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("repro_pool_size")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7

    def test_histogram_buckets_are_fixed_and_deterministic(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "repro_sizes", buckets=DEFAULT_SIZE_BUCKETS
        )
        for value in (0.5, 1.0, 5.0, 50_000.0, 99_999_999.0):
            histogram.observe(value)
        # 0.5 and 1.0 land in the first (<=1) bucket, 5.0 in <=10,
        # 50k in <=100k, the huge value in the +Inf overflow slot.
        assert histogram.counts[0] == 2
        assert histogram.counts[1] == 1
        assert histogram.counts[5] == 1
        assert histogram.counts[-1] == 1
        assert histogram.count == 5

    def test_histogram_rebuckets_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("repro_sizes", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("repro_sizes", buckets=(1.0, 3.0))

    def test_default_buckets_strictly_increase(self):
        for buckets in (DEFAULT_TIME_BUCKETS, DEFAULT_SIZE_BUCKETS):
            assert list(buckets) == sorted(set(buckets))


class TestSpans:
    def test_span_uses_registry_clock(self):
        ticks = iter([10.0, 13.5, 20.0, 21.0])
        registry = MetricsRegistry(clock=lambda: next(ticks))
        with registry.span("stage-one"):
            pass
        with registry.span("stage-one"):
            pass
        assert registry.span_seconds() == {"stage-one": 4.5}

    def test_span_seconds_preserves_execution_order(self):
        registry = MetricsRegistry()
        registry.record_span("b-stage", 1.0)
        registry.record_span("a-stage", 2.0)
        assert list(registry.span_seconds()) == ["b-stage", "a-stage"]


class TestSnapshotRoundTrip:
    def _populated(self):
        ticks = iter([0.0, 2.0])
        registry = MetricsRegistry(clock=lambda: next(ticks))
        registry.counter("repro_x_total").inc(7)
        registry.counter("repro_x_total", labels={"country": "BR"}).inc(2)
        registry.gauge("repro_level").set(3)
        registry.histogram("repro_sizes", buckets=(1.0, 10.0)).observe(5.0)
        with registry.span("stage"):
            pass
        return registry

    def test_snapshot_is_json_serializable(self):
        snapshot = self._populated().snapshot()
        parsed = json.loads(json.dumps(snapshot))
        assert parsed["counters"]["repro_x_total"] == 7
        assert parsed["counters"]['repro_x_total{country="BR"}'] == 2
        assert parsed["spans"]["stage"]["total"] == 2.0

    def test_merge_sums_counters_histograms_spans(self):
        first = self._populated()
        second = self._populated()
        second.merge_snapshot(first.snapshot())
        assert second.counter_value("repro_x_total") == 14
        assert second.counter_value(
            "repro_x_total", labels={"country": "BR"}
        ) == 4
        histogram = second.histogram("repro_sizes", buckets=(1.0, 10.0))
        assert histogram.count == 2
        assert histogram.sum == 10.0
        assert second.span_seconds()["stage"] == 4.0

    def test_merge_into_empty_registry_restores_everything(self):
        snapshot = self._populated().snapshot()
        empty = MetricsRegistry()
        empty.merge_snapshot(snapshot)
        assert empty.snapshot() == snapshot

    def test_merge_keeps_live_gauge(self):
        live = MetricsRegistry()
        live.gauge("repro_level").set(9)
        live.merge_snapshot(self._populated().snapshot())
        # The live (current) reading wins over the snapshot's.
        assert live.gauge("repro_level").value == 9


class TestExport:
    def test_to_json_has_version_and_sorted_keys(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total").inc()
        document = json.loads(registry.to_json(scale="tiny"))
        assert document["format"] == "repro-metrics-v1"
        assert document["scale"] == "tiny"
        assert "python" in document
        assert document["counters"]["repro_x_total"] == 1

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", "things counted").inc(3)
        registry.histogram("repro_sizes", buckets=(1.0, 10.0)).observe(5.0)
        registry.record_span("stage-one", 1.5)
        text = registry.render_prometheus()
        assert "# HELP repro_x_total things counted" in text
        assert "# TYPE repro_x_total counter" in text
        assert "repro_x_total 3" in text
        # Buckets render cumulatively, with the +Inf overflow.
        assert 'repro_sizes_bucket{le="1.0"} 0' in text
        assert 'repro_sizes_bucket{le="10.0"} 1' in text
        assert 'repro_sizes_bucket{le="+Inf"} 1' in text
        assert "repro_sizes_count 1" in text
        assert "repro_span_stage_one_seconds_sum 1.5" in text


class TestNullRegistry:
    def test_null_registry_records_nothing(self):
        registry = NullMetricsRegistry()
        registry.counter("repro_x_total").inc(5)
        registry.gauge("repro_level").set(2)
        registry.histogram("repro_sizes").observe(1.0)
        with registry.span("stage"):
            pass
        registry.record_span("stage", 3.0)
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "spans": {},
        }
        assert registry.counter_value("repro_x_total") == 0

    def test_shared_null_registry_is_a_null_registry(self):
        assert isinstance(NULL_REGISTRY, NullMetricsRegistry)
