#!/usr/bin/env python3
"""Privacy investigation: EUI-64 device tracking (paper §5.1–§5.2).

Collects a passive NTP corpus, extracts every EUI-64 interface
identifier, attributes the embedded MACs to manufacturers (Table 2),
classifies each multi-/64 MAC with the paper's tracking heuristics, and
renders the sighting timeline of one trackable device (Figure 7 style).

Run:  python examples/tracking_investigation.py
"""

from collections import defaultdict

from repro.addr.mac import format_mac
from repro.addr.oui_db import manufacturer_counts
from repro.analysis.figures import render_timeline
from repro.analysis.tables import format_table
from repro.core import CampaignConfig, NTPCampaign, analyze_tracking
from repro.core.tracking import TrackingClass
from repro.world import CAMPAIGN_EPOCH, WorldConfig, build_world


def main() -> None:
    world = build_world(
        WorldConfig(
            seed=11,
            n_fixed_ases=15,
            n_cellular_ases=5,
            n_hosting_ases=5,
            n_home_networks=500,
            n_cellular_subscribers=200,
            n_hosting_networks=20,
        )
    )
    campaign = NTPCampaign(
        world, CampaignConfig(start=CAMPAIGN_EPOCH, weeks=31, seed=11)
    )
    print("collecting 31 weeks of NTP observations ...")
    corpus = campaign.run()
    print(f"  corpus: {len(corpus):,} addresses")

    report = analyze_tracking(
        corpus, world.ipv6_origin_asn, world.country_of
    )
    print(
        f"\nEUI-64 addresses: {report.eui64_addresses:,} "
        f"({100 * report.eui64_fraction:.2f}% of corpus; paper: 3%)"
    )
    print(
        f"expected random lookalikes: {report.expected_random:.1f} — the "
        "detections are genuine"
    )
    print(f"unique embedded MACs: {report.unique_macs:,}")

    counts = manufacturer_counts(report.tracks.keys(), world.oui_db)
    print()
    print(
        format_table(
            ["Manufacturer", "MACs"],
            [[vendor, count] for vendor, count in counts.most_common(8)],
            title="Embedded-MAC manufacturers (paper Table 2)",
        )
    )

    print(
        f"\nMACs trackable across /64s: {report.multi_slash64_macs:,} "
        f"({100 * report.multi_slash64_fraction:.1f}%; paper: 8.7%)"
    )
    for cls in TrackingClass:
        print(f"  {cls.value:<28} {report.classes[cls]:,}")

    # Render the most-travelled trackable device.
    for cls in (
        TrackingClass.USER_MOVEMENT,
        TrackingClass.CHANGING_PROVIDERS,
        TrackingClass.PREFIX_REASSIGNMENT,
    ):
        exemplar = report.exemplar(cls)
        if exemplar is not None:
            break
    if exemplar is None:
        print("\n(no trackable exemplar at this scale)")
        return

    print(
        f"\nexemplar ({cls.value}): MAC {format_mac(exemplar.mac)}, "
        f"{len(exemplar.slash64s)} /64s, ASes {list(exemplar.asns)}"
    )
    tracks = defaultdict(list)
    for when, prefix64, asn in exemplar.timeline:
        record = world.registry.lookup(asn) if asn else None
        tracks[record.name if record else f"AS{asn}"].append(when)
    print(
        render_timeline(
            dict(tracks),
            start=campaign.config.start,
            end=campaign.config.end,
            width=60,
            title="device sightings over the campaign (Fig. 7 style)",
        )
    )


if __name__ == "__main__":
    main()
