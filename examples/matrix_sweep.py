#!/usr/bin/env python3
"""Scenario sweep: CGN-heavy vs EUI-64-dense worlds, with and without
network faults, in one declarative matrix.

The paper's central warning — hitlist quality depends on *which* slice
of the Internet answers — becomes directly measurable when the same
campaign runs across a grid of worlds.  This example sweeps a 2×2
matrix: a cellular/CGN-heavy world (most clients behind rotating
carrier prefixes) against an EUI-64-dense residential world (half the
commuter devices leak their MAC), each measured on a clean network and
under a faulty one (vantage flaps plus packet loss).

Each cell runs isolated in its own process; the sweep records every
outcome in ``MATRIX.json`` and the report compares record counts
across the axes.  Re-running with ``resume=True`` (or
``repro matrix --resume``) skips completed cells after verifying their
corpus digests.

Run:  python examples/matrix_sweep.py [directory]
"""

import sys
import tempfile

from repro.analysis import format_matrix_report
from repro.api import sweep

#: Mostly cellular subscribers: addresses live behind carrier-grade NAT
#: prefixes that rotate, so the responsive corpus churns.
CGN_HEAVY = {
    "n_home_networks": 40,
    "n_cellular_subscribers": 160,
    "n_hosting_networks": 8,
}

#: Mostly residential networks with half the commuter devices using
#: EUI-64 interface identifiers: stable, trackable, geolocatable.
EUI64_DENSE = {
    "n_home_networks": 160,
    "n_cellular_subscribers": 40,
    "n_hosting_networks": 8,
    "commuter_eui64_fraction": 0.5,
}

SPEC = {
    "presets": ["tiny"],
    "overrides": [CGN_HEAVY, EUI64_DENSE],
    "faults": [None, "flap=0.3,loss=0.1,seed=7"],
    "weeks": [2],
    "workers": [1],
    "seeds": [7],
}


def main() -> None:
    if len(sys.argv) > 1:
        directory = sys.argv[1]
    else:
        directory = tempfile.mkdtemp(prefix="repro-matrix-")
    print(f"sweeping 2 worlds x 2 fault regimes into {directory} ...")
    result = sweep(SPEC, directory, matrix_workers=2)
    counts = result.counts
    print(
        f"done: {counts['ok']} ok, {counts['failed']} failed, "
        f"{counts['timeout']} timed out, {counts['rejected']} rejected"
    )
    print()
    print(format_matrix_report(result.manifest, result.directory))


if __name__ == "__main__":
    main()
