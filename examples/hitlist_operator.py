#!/usr/bin/env python3
"""Operate an IPv6 Hitlist service (the comparison methodology, §2.2).

Runs the Gasser-style weekly pipeline — seed harvesting, traceroute,
target generation, multi-protocol probing, alias filtering — and shows
how the published hitlist grows week over week and what it structurally
misses (ephemeral, high-entropy clients).

Run:  python examples/hitlist_operator.py
"""

from repro.addr.entropy import normalized_iid_entropy
from repro.addr.ipv6 import iid_of
from repro.analysis.distributions import ECDF
from repro.analysis.tables import format_table
from repro.scan import HitlistService
from repro.world import CAMPAIGN_EPOCH, WEEK, WorldConfig, build_world


def main() -> None:
    world = build_world(
        WorldConfig(
            seed=37,
            n_fixed_ases=12,
            n_cellular_ases=5,
            n_hosting_ases=5,
            n_home_networks=300,
            n_cellular_subscribers=100,
            n_hosting_networks=25,
        )
    )
    vantage_asn = sorted({v.asn for v in world.vantages})[0]
    service = HitlistService(world, vantage_asn, seed=37)

    print("running 8 weekly Hitlist cycles ...")
    history = service.run(CAMPAIGN_EPOCH, 8)

    rows = []
    cumulative = set()
    for snapshot in service.snapshots:
        cumulative |= snapshot.responsive
        rows.append(
            [
                snapshot.week,
                snapshot.candidates_probed,
                len(snapshot.responsive),
                len(cumulative),
                len(snapshot.aliased_prefixes),
            ]
        )
    print(
        format_table(
            ["week", "candidates", "responsive", "cumulative", "new aliased"],
            rows,
            title="weekly Hitlist snapshots",
        )
    )

    print(f"\naccumulated responsive addresses: {len(history):,}")
    print(f"aliased prefixes on the published list: "
          f"{len(service.aliased_prefixes):,}")

    entropies = [
        normalized_iid_entropy(iid_of(address)) for address in history
    ]
    print(
        f"median IID entropy of the hitlist: {ECDF(entropies).median:.2f} "
        "(paper: ~0.7 — routers, servers and CPE, not ephemeral clients)"
    )
    total_devices = sum(
        1 for device in world.iter_devices() if device.uses_pool
    )
    print(
        f"\nfor contrast: the world holds {len(world.devices):,} devices "
        f"({total_devices:,} of them NTP-pool clients a passive vantage "
        "could see) — the active pipeline reaches only its predictable "
        "fringe."
    )


if __name__ == "__main__":
    main()
