#!/usr/bin/env python3
"""Ethics-aware dataset release (paper §3 "Ethical Considerations", §6).

Collects a corpus, demonstrates what full addresses would leak (embedded
MACs), then builds the /48-truncated public release the paper advocates,
audits it for identifier leakage, and writes it to disk.

Run:  python examples/release_dataset.py [output-path]
"""

import sys

from repro.addr.eui64 import extract_mac
from repro.addr.ipv6 import format_address
from repro.addr.mac import format_mac
from repro.core import (
    CampaignConfig,
    NTPCampaign,
    build_release,
    verify_release_safety,
)
from repro.world import CAMPAIGN_EPOCH, WorldConfig, build_world


def main() -> None:
    output_path = sys.argv[1] if len(sys.argv) > 1 else "release_48s.csv"
    world = build_world(
        WorldConfig(
            seed=43,
            n_fixed_ases=10,
            n_cellular_ases=4,
            n_hosting_ases=4,
            n_home_networks=200,
            n_cellular_subscribers=80,
            n_hosting_networks=15,
        )
    )
    campaign = NTPCampaign(
        world, CampaignConfig(start=CAMPAIGN_EPOCH, weeks=8, seed=43)
    )
    print("collecting 8 weeks of observations ...")
    corpus = campaign.run()
    print(f"corpus: {len(corpus):,} addresses")

    # What raw release would expose.
    leaks = 0
    example = None
    for address in corpus.addresses():
        mac = extract_mac(address)
        if mac is not None:
            leaks += 1
            if example is None:
                example = (address, mac)
    print(f"\nraw addresses embedding a device MAC: {leaks:,}")
    if example is not None:
        address, mac = example
        print(
            f"  e.g. {format_address(address)} exposes MAC {format_mac(mac)}"
        )

    artifact = build_release(corpus)
    violations = verify_release_safety(artifact)
    print(
        f"\n/48-truncated release: {artifact.prefix_count:,} prefixes "
        f"aggregating {artifact.address_count:,} addresses"
    )
    print(f"safety audit: {'CLEAN' if not violations else violations}")

    with open(output_path, "w") as stream:
        artifact.write(stream)
    print(f"release written to {output_path}")
    print("\nfirst lines:")
    for line in artifact.lines()[:5]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
