#!/usr/bin/env python3
"""Outage monitoring from passive NTP activity (paper §2.1 application).

Injects whole-AS outages into a world, runs the passive campaign with an
activity recorder attached to the vantage servers' sinks, and shows the
collapse detector recovering the injected windows — the "free"
availability signal a large passive hitlist provides.

Run:  python examples/outage_monitor.py
"""

from repro.analysis.figures import render_timeline
from repro.core import (
    ASActivityRecorder,
    CampaignConfig,
    NTPCampaign,
    detect_outages,
)
from repro.world import CAMPAIGN_EPOCH, DAY, WorldConfig, build_world

WEEKS = 10


def main() -> None:
    world = build_world(
        WorldConfig(
            seed=61,
            n_fixed_ases=14,
            n_cellular_ases=5,
            n_hosting_ases=5,
            n_home_networks=500,
            n_cellular_subscribers=150,
            n_hosting_networks=20,
            outage_as_count=2,
            outage_min_days=3,
            outage_max_days=6,
            campaign_weeks=WEEKS,
        )
    )
    print("injected ground truth:")
    for asn, windows in sorted(world.outages.items()):
        record = world.registry.lookup(asn)
        for start, end in windows:
            day0 = int((start - CAMPAIGN_EPOCH) // DAY)
            day1 = int((end - CAMPAIGN_EPOCH) // DAY)
            print(f"  {record.name} (AS{asn}): days {day0}-{day1}")

    campaign = NTPCampaign(
        world, CampaignConfig(start=CAMPAIGN_EPOCH, weeks=WEEKS, seed=61)
    )
    recorder = ASActivityRecorder(world.ipv6_origin_asn, epoch=CAMPAIGN_EPOCH)
    campaign.extra_sinks.append(recorder)
    print("\ncollecting observations ...")
    campaign.run()

    events = detect_outages(recorder, days=WEEKS * 7, min_baseline=3.0)
    print(f"\ndetected {len(events)} outage event(s):")
    for event in events:
        record = world.registry.lookup(event.asn)
        print(
            f"  {record.name} (AS{event.asn}): days "
            f"{event.start_day}-{event.end_day} "
            f"(baseline {event.baseline:.0f} obs/day, "
            f"activity fell to {100 * event.depth:.0f}%)"
        )

    # Visualize one affected AS's daily activity as a sighting strip.
    if events:
        asn = events[0].asn
        series = recorder.series(asn, WEEKS * 7)
        tracks = {
            f"AS{asn} activity": [
                CAMPAIGN_EPOCH + day * DAY + 1
                for day, count in enumerate(series)
                if count > 0
            ]
        }
        print()
        print(
            render_timeline(
                tracks,
                start=CAMPAIGN_EPOCH,
                end=CAMPAIGN_EPOCH + WEEKS * 7 * DAY,
                width=70,
                title="daily activity (gaps = outage)",
            )
        )


if __name__ == "__main__":
    main()
