#!/usr/bin/env python3
"""Quickstart: build a world, run the full study, compare the datasets.

Reproduces the paper's core loop end to end at small scale in under a
minute: a generated IPv6 Internet, the 27-vantage passive NTP campaign,
the IPv6 Hitlist and CAIDA comparison campaigns, and the Table 1
comparison.

Run:  python examples/quickstart.py [seed]
"""

import sys
import time

from repro.api import Study
from repro.core import (
    address_lifetime_summary,
    compare_datasets,
    phone_provider_shares,
)
from repro.world import WorldConfig


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    config = WorldConfig(
        seed=seed,
        n_fixed_ases=12,
        n_cellular_ases=5,
        n_hosting_ases=5,
        n_home_networks=250,
        n_cellular_subscribers=120,
        n_hosting_networks=20,
    )

    study = Study(seed=seed, world_config=config)

    print("building world ...")
    world = study.world()
    for key, value in world.stats().items():
        print(f"  {key:>20}: {value:,}")

    print("\nrunning the 31-week study (NTP + Hitlist + CAIDA) ...")
    started = time.time()
    results = study.run()
    print(f"  done in {time.time() - started:.1f}s")

    print()
    comparison = compare_datasets(
        results.ntp,
        [results.hitlist, results.caida],
        world.ipv6_origin_asn,
    )
    print(comparison.render())

    print(
        "\nsize ratios: NTP/Hitlist %.0fx, NTP/CAIDA %.0fx "
        "(paper: 370x / 681x at Internet scale)"
        % (
            comparison.size_ratio("ipv6-hitlist"),
            comparison.size_ratio("caida-routed-48"),
        )
    )

    shares = phone_provider_shares(
        [results.ntp, results.hitlist], world.registry, world.ipv6_origin_asn
    )
    print(
        "phone-provider AS share: NTP %.0f%% vs Hitlist %.0f%% "
        "(paper: 14%% vs 2%%)"
        % (100 * shares["ntp-pool"], 100 * shares["ipv6-hitlist"])
    )

    summary = address_lifetime_summary(results.ntp)
    print(
        "address lifetimes: %.0f%% seen once, %.1f%% observed a week or "
        "longer (paper: >60%% / 1.2%%)"
        % (
            100 * summary.seen_once_fraction,
            100 * summary.week_or_longer_fraction,
        )
    )


if __name__ == "__main__":
    main()
