#!/usr/bin/env python3
"""Backscanning survey: probing back to passive NTP clients (paper §4.2).

Runs the paper's backscanning experiment: for a week, five vantages
record their clients in ten-minute intervals and probe each client (plus
a random address in the same /64) when the interval closes.  Reports
responsiveness, the entropy split between hits and misses, and the
aliased networks the random probes expose.

Run:  python examples/backscan_survey.py
"""

from repro.analysis.distributions import ECDF
from repro.core import BackscanCampaign, CampaignConfig, NTPCampaign
from repro.world import CAMPAIGN_EPOCH, WorldConfig, build_world


def main() -> None:
    world = build_world(
        WorldConfig(
            seed=29,
            n_fixed_ases=15,
            n_cellular_ases=5,
            n_hosting_ases=5,
            n_home_networks=400,
            n_cellular_subscribers=250,
            n_hosting_networks=20,
        )
    )
    campaign = NTPCampaign(
        world, CampaignConfig(start=CAMPAIGN_EPOCH, weeks=12, seed=29)
    )
    print("collecting 12 weeks of observations ...")
    campaign.run()

    print("backscanning clients seen during the final week ...")
    backscan = BackscanCampaign(world, campaign, vantage_count=5, seed=29)
    report = backscan.run(start_day=11 * 7, days=7)

    print(
        f"\nclients probed: {report.probed_clients:,}; responsive: "
        f"{report.responsive_clients:,} "
        f"({100 * report.client_responsive_fraction:.0f}%; paper ~67%)"
    )
    print(
        f"random same-/64 targets: {report.random_probed:,}; responsive: "
        f"{report.random_responsive:,} "
        f"({100 * report.random_responsive_fraction:.1f}%; paper 3.5%)"
    )

    if report.hit_entropies and report.miss_entropies:
        print(
            "median IID entropy: hits %.2f vs misses %.2f (paper: misses "
            "skew higher)"
            % (
                ECDF(report.hit_entropies).median,
                ECDF(report.miss_entropies).median,
            )
        )

    print(
        f"\naliased /64s discovered via random probes: "
        f"{len(report.aliased_slash64s):,}"
    )
    print(
        f"NTP clients living inside aliased /64s: "
        f"{len(report.clients_in_aliased_64s):,} — invisible to active "
        "scanning (the paper found 3.8M such clients vs 23 in the Hitlist)"
    )


if __name__ == "__main__":
    main()
