#!/usr/bin/env python3
"""TGA workbench: train target-generation algorithms on different diets.

Demonstrates the paper's §1 observation that TGAs inherit their training
hitlist's biases: the same generators trained on the (infrastructure-
flavoured) Hitlist versus the (client-flavoured) NTP corpus discover
very different things — and neither can synthesize a live ephemeral
client.

Run:  python examples/tga_workbench.py
"""

from repro.addr.entropy import normalized_iid_entropy
from repro.addr.ipv6 import iid_of
from repro.analysis.tables import format_table
from repro.core import StudyConfig, run_study
from repro.scan.tga import ClusterExpansion, NibbleModel
from repro.world import CAMPAIGN_EPOCH, WEEK, build_world, preset_config
from repro.world.rng import split_rng

BUDGET = 1_500


def evaluate(world, label, seeds, when):
    rows = []
    for name, generator in (
        ("entropy/ip-style", NibbleModel()),
        ("6Gen-style", ClusterExpansion()),
    ):
        rng = split_rng(5, label, name)
        candidates = generator.fit(seeds).generate(BUDGET, rng)
        hits = [
            candidate
            for candidate in candidates
            if world.is_responsive(candidate, when)
        ]
        entropies = sorted(
            normalized_iid_entropy(iid_of(hit)) for hit in hits
        )
        median = entropies[len(entropies) // 2] if entropies else float("nan")
        rows.append(
            [
                label,
                name,
                len(candidates),
                len(hits),
                f"{median:.2f}" if hits else "-",
            ]
        )
    return rows


def main() -> None:
    world = build_world(preset_config("small", seed=53))
    print("running the study to obtain training hitlists ...")
    results = run_study(
        world, StudyConfig(start=CAMPAIGN_EPOCH, weeks=15, seed=53)
    )
    when = CAMPAIGN_EPOCH + 14 * WEEK

    hitlist_seeds = set(results.hitlist.addresses())
    rng = split_rng(5, "sample")
    ntp_pool = sorted(results.ntp.addresses())
    ntp_seeds = set(
        rng.sample(ntp_pool, min(len(hitlist_seeds), len(ntp_pool)))
    )

    rows = evaluate(world, "Hitlist-trained", hitlist_seeds, when)
    rows += evaluate(world, "NTP-trained", ntp_seeds, when)
    print()
    print(
        format_table(
            ["training diet", "TGA", "candidates", "hits", "median hit entropy"],
            rows,
            title="what each training diet teaches a generator to find",
        )
    )
    print(
        "\nLow-entropy hits = hidden infrastructure (rack servers, "
        "routers); high-entropy hits = aliased middleboxes. No diet "
        "produces live ephemeral clients — the structural reason the "
        "paper argues passive collection is irreplaceable."
    )


if __name__ == "__main__":
    main()
