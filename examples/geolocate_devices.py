#!/usr/bin/env python3
"""Geolocation attack demo: EUI-64 + wardriving data (paper §5.3).

Runs the IPvSeeYou-style pipeline against a passively collected corpus:
recover MACs from EUI-64 IIDs, infer per-vendor wired→wireless BSSID
offsets from the wardriving database, and geolocate devices — then shows
why the only defence is abandoning EUI-64 addressing.

Run:  python examples/geolocate_devices.py
"""

from repro.addr.mac import format_mac
from repro.analysis.tables import format_table
from repro.core import CampaignConfig, NTPCampaign
from repro.geo import geolocate_corpus
from repro.world import CAMPAIGN_EPOCH, WorldConfig, build_world


def main() -> None:
    world = build_world(
        WorldConfig(
            seed=19,
            n_fixed_ases=15,
            n_cellular_ases=5,
            n_hosting_ases=5,
            n_home_networks=600,
            n_cellular_subscribers=150,
            n_hosting_networks=20,
            # Boost DE so AVM CPE dominate, as in the paper.
        )
    )
    campaign = NTPCampaign(
        world, CampaignConfig(start=CAMPAIGN_EPOCH, weeks=20, seed=19)
    )
    print("collecting NTP observations ...")
    corpus = campaign.run()

    eui64_addresses = list(corpus.eui64_addresses())
    print(f"corpus: {len(corpus):,} addresses, {len(eui64_addresses):,} EUI-64")
    print(f"wardriving DB: {len(world.bssid_db):,} geolocated BSSIDs")

    report = geolocate_corpus(
        eui64_addresses, world.bssid_db, min_pairs=8
    )
    print(f"\ninferred offsets for {len(report.offsets)} OUIs:")
    for oui, inferred in sorted(report.offsets.items()):
        vendor = world.oui_db.lookup_oui(oui) or "Unlisted"
        print(
            f"  {oui:06x} ({vendor:<42}) offset {inferred.offset:+d} "
            f"from {inferred.pairs:,} pairs"
        )

    print(f"\ngeolocated devices: {report.located_count:,}")
    print(
        format_table(
            ["country", "share"],
            [
                [country, f"{100 * share:.1f}%"]
                for country, share in report.top_countries(5)
            ],
            title="geolocations by country (paper: DE 75% via AVM)",
        )
    )

    if report.located:
        sample = report.located[0]
        print(
            f"\nexample: wired MAC {format_mac(sample.mac)} -> BSSID "
            f"{format_mac(sample.bssid)} at ({sample.point.latitude:.3f}, "
            f"{sample.point.longitude:.3f}) [{sample.point.country}]"
        )
    print(
        "\ndefence: sever the MAC-to-BSSID linkage — i.e. stop deriving "
        "IPv6 IIDs from hardware MACs (use RFC 4941/7217 addresses)."
    )


if __name__ == "__main__":
    main()
